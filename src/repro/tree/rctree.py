"""Routed interconnect trees (multi-sink nets)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.utils.validation import require, require_positive


@dataclass(frozen=True)
class TreeEdge:
    """One routed wire segment of a tree, connecting ``parent`` to ``child``.

    Attributes
    ----------
    parent / child:
        Node names; the parent is on the driver side.
    length:
        Wire length of the edge in meters.
    resistance_per_meter / capacitance_per_meter:
        Per-meter RC of the edge's routing layer.
    """

    parent: str
    child: str
    length: float
    resistance_per_meter: float
    capacitance_per_meter: float

    def __post_init__(self) -> None:
        require_positive(self.length, "length")
        require_positive(self.resistance_per_meter, "resistance_per_meter")
        require_positive(self.capacitance_per_meter, "capacitance_per_meter")

    @property
    def resistance(self) -> float:
        """Total resistance of the edge, ohms."""
        return self.resistance_per_meter * self.length

    @property
    def capacitance(self) -> float:
        """Total capacitance of the edge, farads."""
        return self.capacitance_per_meter * self.length


@dataclass(frozen=True)
class TreeSink:
    """A sink (receiver) of the tree."""

    node: str
    receiver_width: float

    def __post_init__(self) -> None:
        require_positive(self.receiver_width, "receiver_width")


class RoutingTree:
    """A routed multi-sink net: wire tree, driver at the root, sinks at leaves."""

    def __init__(self, root: str, driver_width: float, name: str = "tree") -> None:
        require_positive(driver_width, "driver_width")
        self._root = root
        self._driver_width = driver_width
        self._name = name
        self._edges: Dict[str, TreeEdge] = {}       # keyed by child node
        self._children: Dict[str, List[str]] = {root: []}
        self._sinks: Dict[str, TreeSink] = {}

    # ------------------------------------------------------------------ #
    @property
    def root(self) -> str:
        """Name of the driver node."""
        return self._root

    @property
    def name(self) -> str:
        """Net name (reporting only)."""
        return self._name

    @property
    def driver_width(self) -> float:
        """Driver width in units of ``u``."""
        return self._driver_width

    def add_edge(
        self,
        parent: str,
        child: str,
        *,
        length: float,
        resistance_per_meter: float,
        capacitance_per_meter: float,
    ) -> None:
        """Add a wire segment from ``parent`` (driver side) to the new node ``child``."""
        require(parent in self._children, f"parent node {parent!r} does not exist")
        require(child not in self._children, f"node {child!r} already exists")
        edge = TreeEdge(
            parent=parent,
            child=child,
            length=length,
            resistance_per_meter=resistance_per_meter,
            capacitance_per_meter=capacitance_per_meter,
        )
        self._edges[child] = edge
        self._children[parent].append(child)
        self._children[child] = []

    def mark_sink(self, node: str, receiver_width: float) -> None:
        """Declare ``node`` to be a sink with the given receiver width."""
        require(node in self._children, f"node {node!r} does not exist")
        require(node != self._root, "the root cannot be a sink")
        self._sinks[node] = TreeSink(node=node, receiver_width=receiver_width)

    # ------------------------------------------------------------------ #
    def children(self, node: str) -> Tuple[str, ...]:
        """Children of ``node`` (towards the sinks)."""
        return tuple(self._children[node])

    def edge_to(self, child: str) -> TreeEdge:
        """The wire edge whose downstream endpoint is ``child``."""
        return self._edges[child]

    def sink(self, node: str) -> Optional[TreeSink]:
        """The sink at ``node``, or ``None`` if the node is not a sink."""
        return self._sinks.get(node)

    @property
    def nodes(self) -> Tuple[str, ...]:
        """All node names (root first, insertion order)."""
        return tuple(self._children)

    @property
    def edges(self) -> Tuple[TreeEdge, ...]:
        """All edges of the tree."""
        return tuple(self._edges.values())

    @property
    def sinks(self) -> Tuple[TreeSink, ...]:
        """All sinks of the tree."""
        return tuple(self._sinks.values())

    @property
    def num_sinks(self) -> int:
        """Number of sinks."""
        return len(self._sinks)

    def total_wire_length(self) -> float:
        """Total routed wire length, meters."""
        return sum(edge.length for edge in self._edges.values())

    def total_wire_capacitance(self) -> float:
        """Total wire capacitance, farads."""
        return sum(edge.capacitance for edge in self._edges.values())

    def validate(self) -> None:
        """Check structural invariants: every leaf must be a sink."""
        for node, children in self._children.items():
            if node == self._root:
                require(
                    len(children) > 0, "the root must drive at least one edge"
                )
                continue
            if not children:
                require(
                    node in self._sinks,
                    f"leaf node {node!r} is not marked as a sink",
                )

    def describe(self) -> str:
        """One-line human-readable summary."""
        return (
            f"{self._name}: {len(self._edges)} edges, {self.num_sinks} sinks, "
            f"wire length {self.total_wire_length() * 1e6:.0f}um, "
            f"driver {self._driver_width:.0f}u"
        )
