"""Shared utilities: unit handling, Pareto pruning helpers, validation, RNG."""

from repro.utils.units import (
    FARADS_PER_FEMTOFARAD,
    METERS_PER_MICRON,
    SECONDS_PER_NANOSECOND,
    SECONDS_PER_PICOSECOND,
    from_femtofarads,
    from_microns,
    from_nanoseconds,
    from_picoseconds,
    to_femtofarads,
    to_microns,
    to_nanoseconds,
    to_picoseconds,
)
from repro.utils.canonical import CanonicalizationError, canonical_json, stable_digest
from repro.utils.pareto import prune_pareto_2d, prune_pareto_3d
from repro.utils.rng import child_rng, make_rng
from repro.utils.validation import (
    ValidationError,
    require,
    require_finite,
    require_in_range,
    require_positive,
    require_non_negative,
    require_sorted,
)

__all__ = [
    "FARADS_PER_FEMTOFARAD",
    "METERS_PER_MICRON",
    "SECONDS_PER_NANOSECOND",
    "SECONDS_PER_PICOSECOND",
    "from_femtofarads",
    "from_microns",
    "from_nanoseconds",
    "from_picoseconds",
    "to_femtofarads",
    "to_microns",
    "to_nanoseconds",
    "to_picoseconds",
    "CanonicalizationError",
    "canonical_json",
    "stable_digest",
    "prune_pareto_2d",
    "prune_pareto_3d",
    "child_rng",
    "make_rng",
    "ValidationError",
    "require",
    "require_finite",
    "require_in_range",
    "require_positive",
    "require_non_negative",
    "require_sorted",
]
