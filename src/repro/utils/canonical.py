"""Strict canonical JSON serialization for cache keys and fingerprints.

Cache keys must be *byte-stable across interpreter runs*: the same
configuration must hash to the same key in every process, on every machine.
``json.dumps(..., default=repr)`` silently violates this — the default
``repr`` of a bare object embeds its memory address (``<Foo object at
0x7f...>``), so any payload containing an object without an explicit
serialization produced a different key per process and the disk cache never
hit (or worse, a colliding ``repr`` hit a stale entry).

:func:`canonical_json` takes the opposite stance: it accepts only values
with a well-defined canonical form (``None``, ``bool``, ``int``, ``str``,
finite ``float`` — including numpy scalar subclasses — and ``dict`` /
``list`` / ``tuple`` thereof) and **raises** ``CanonicalizationError`` on
anything else, naming the offending path.  Floats are canonicalized through
``float()`` (collapsing numpy float subclasses) and rejected when
non-finite, since ``NaN != NaN`` breaks cache-key equality semantics;
dictionary keys must be strings and are emitted sorted.
"""

from __future__ import annotations

import hashlib
import json
import math
from typing import Any

__all__ = ["CanonicalizationError", "canonical_json", "stable_digest"]


class CanonicalizationError(TypeError):
    """A payload value has no strict canonical serialization."""


def _canonicalize(value: Any, path: str) -> Any:
    if value is None or isinstance(value, (bool, str)):
        return value
    if isinstance(value, float):  # bool already handled; np.float64 passes here
        if not math.isfinite(value):
            raise CanonicalizationError(
                f"{path}: non-finite float {value!r} has no stable canonical form"
            )
        return float(value)
    if isinstance(value, int):  # after bool/float; covers int subclasses
        return int(value)
    if isinstance(value, (list, tuple)):
        return [
            _canonicalize(item, f"{path}[{index}]") for index, item in enumerate(value)
        ]
    if isinstance(value, dict):
        result = {}
        for key in sorted(value, key=str):
            if not isinstance(key, str):
                raise CanonicalizationError(
                    f"{path}: dict key {key!r} is not a string"
                )
            result[key] = _canonicalize(value[key], f"{path}.{key}")
        return result
    raise CanonicalizationError(
        f"{path}: {type(value).__qualname__} value {value!r} has no strict "
        "canonical serialization; convert it to plain dict/list/str/number "
        "fields explicitly (a repr fallback would embed memory addresses and "
        "make cache keys unstable across processes)"
    )


def canonical_json(payload: Any) -> str:
    """Serialize ``payload`` to a canonical JSON string.

    The output is byte-identical for equal payloads in every interpreter
    run: keys are sorted, separators are fixed, floats use CPython's exact
    shortest-round-trip ``repr``, and any value without a well-defined
    canonical form raises :class:`CanonicalizationError` instead of being
    silently ``repr``-ed.
    """
    return json.dumps(
        _canonicalize(payload, "$"),
        sort_keys=True,
        separators=(",", ":"),
        allow_nan=False,
        ensure_ascii=True,
    )


def stable_digest(payload: Any, *, length: int = 20) -> str:
    """Hex SHA-256 digest (truncated to ``length`` chars) of ``payload``."""
    digest = hashlib.sha256(canonical_json(payload).encode("utf-8")).hexdigest()
    return digest[:length]
