"""Shared LRU disk budget for the persistent design-state tiers.

The refine-record tier (:class:`repro.core.refine.RefineRecordStore`) and
the frontier tier (:class:`repro.engine.wincache.WindowCompilationCache`)
bound one family of files (``<prefix>-*.json``) in a shared directory the
same way; this helper holds the one copy of that discipline:

* files are ranked by mtime — saves and successful loads touch it — and
  the least recently used files beyond ``max_files`` (and, when set,
  beyond ``max_bytes`` of total size) are evicted;
* the file just saved always survives its own save, even on filesystems
  whose coarse mtimes tie-break it behind an older file;
* eviction removes whole files through the owner's callback (which keeps
  its own counters) and never rewrites survivors;
* with only the count budget active, a tracked name set answers the
  common within-budget save without touching disk; a full directory
  re-scan is forced every ``scan_every`` saves so files written by other
  processes sharing the directory still count against the budget — the
  budget is best-effort but cannot be starved by concurrent writers.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Callable, Optional

from repro.utils.validation import require

__all__ = ["DiskLruBudget"]


class DiskLruBudget:
    """LRU count/size budget over ``directory / pattern`` files."""

    def __init__(
        self,
        directory: os.PathLike,
        pattern: str,
        *,
        max_files: Optional[int],
        max_bytes: Optional[int],
        scan_every: int = 64,
    ) -> None:
        require(max_files is None or max_files >= 1, "max_files must be >= 1")
        require(max_bytes is None or max_bytes > 0, "max_bytes must be > 0")
        self._directory = Path(directory)
        self._pattern = pattern
        self._max_files = max_files
        self._max_bytes = max_bytes
        self._scan_every = scan_every
        self._known_names: Optional[set] = None
        self._saves_since_scan = 0

    @property
    def max_files(self) -> Optional[int]:
        """Count budget (``None`` = unbounded)."""
        return self._max_files

    @property
    def max_bytes(self) -> Optional[int]:
        """Size budget in bytes (``None`` = unbounded)."""
        return self._max_bytes

    def forget(self, name: str) -> None:
        """Drop a file name from the tracked set (owner evicted it)."""
        if self._known_names is not None:
            self._known_names.discard(name)

    def note_save(self, saved: Path, evict: Callable[[Path], None]) -> None:
        """Enforce the budgets after ``saved`` was written."""
        self._enforce(saved, evict)

    def gc(self, evict: Callable[[Path], None]) -> None:
        """Apply the budgets on demand (always a full directory scan)."""
        self._saves_since_scan = self._scan_every
        self._enforce(None, evict)

    # ------------------------------------------------------------------ #
    def _enforce(self, saved: Optional[Path], evict: Callable[[Path], None]) -> None:
        if self._max_files is None and self._max_bytes is None:
            return
        self._saves_since_scan += 1
        if (
            saved is not None
            and self._max_bytes is None
            and self._saves_since_scan < self._scan_every
        ):
            if self._known_names is None:
                try:
                    self._known_names = {
                        path.name for path in self._directory.glob(self._pattern)
                    }
                except OSError:  # pragma: no cover - unreadable directory
                    return
            self._known_names.add(saved.name)
            if len(self._known_names) <= self._max_files:
                return
        self._saves_since_scan = 0
        entries = []
        for path in self._directory.glob(self._pattern):
            try:
                stat = path.stat()
            except OSError:  # pragma: no cover - racing eviction is harmless
                continue
            entries.append((stat.st_mtime, path.name, stat.st_size, path))
        self._known_names = {name for _, name, _, _ in entries}
        entries.sort(reverse=True)  # most recently used first
        total_bytes = 0
        for rank, (_mtime, _name, size, path) in enumerate(entries):
            total_bytes += size
            if saved is not None and path == saved:
                # The file just written always survives its own save.
                continue
            over_count = self._max_files is not None and rank >= self._max_files
            over_bytes = (
                self._max_bytes is not None and total_bytes > self._max_bytes and rank > 0
            )
            if over_count or over_bytes:
                evict(path)
