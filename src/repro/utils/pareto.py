"""Pareto-front (dominance) pruning helpers.

The DP buffering engine keeps sets of candidate solutions labelled by tuples
such as ``(capacitance, delay)`` or ``(capacitance, delay, width)`` where
*smaller is better* in every coordinate.  A candidate is *dominated* if some
other candidate is no worse in every coordinate; dominated candidates can
never become part of an optimal solution and are discarded.

These helpers operate on lists of tuples whose first components are the
objective coordinates; any trailing payload (e.g. the partial solution that
produced the point) is carried along untouched, which keeps the DP code free
of bookkeeping.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple, TypeVar

Payload = TypeVar("Payload")


def prune_pareto_2d(
    points: Sequence[Tuple[float, float, Payload]],
    tolerance: float = 0.0,
) -> List[Tuple[float, float, Payload]]:
    """Return the non-dominated subset of 2-D ``(a, b, payload)`` points.

    A point ``(a1, b1)`` dominates ``(a2, b2)`` when ``a1 <= a2`` and
    ``b1 <= b2`` (with at least one strict).  ``tolerance`` allows dropping
    points that are within ``tolerance`` of being dominated, which bounds the
    front size at a negligible quality cost.

    The result is sorted by the first coordinate ascending (and therefore by
    the second coordinate descending).
    """
    if not points:
        return []
    ordered = sorted(points, key=lambda p: (p[0], p[1]))
    front: List[Tuple[float, float, Payload]] = []
    best_b = float("inf")
    for point in ordered:
        if point[1] < best_b - tolerance:
            front.append(point)
            best_b = point[1]
    return front


def prune_pareto_3d(
    points: Sequence[Tuple[float, float, float, Payload]],
    tolerance: float = 0.0,
) -> List[Tuple[float, float, float, Payload]]:
    """Return the non-dominated subset of 3-D ``(a, b, c, payload)`` points.

    Dominance is component-wise ``<=`` in all three coordinates.  The
    implementation sorts by the first coordinate and then performs a sweep
    keeping, for each candidate, the set of ``(b, c)`` pairs already accepted;
    a new point is dominated if an accepted point has both ``b`` and ``c`` no
    larger.  Complexity is ``O(n * f)`` with ``f`` the front size, which is
    fine for the front sizes produced by the buffering DP (tens to a few
    thousands).
    """
    if not points:
        return []
    ordered = sorted(points, key=lambda p: (p[0], p[1], p[2]))
    front: List[Tuple[float, float, float, Payload]] = []
    for point in ordered:
        dominated = False
        for kept in front:
            if kept[1] <= point[1] + tolerance and kept[2] <= point[2] + tolerance:
                dominated = True
                break
        if not dominated:
            front.append(point)
    return front
