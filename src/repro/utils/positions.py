"""Position-list helpers shared by the candidate and engine layers."""

from __future__ import annotations

from typing import Iterable, List


def merge_positions(positions: Iterable[float], *, tolerance: float = 1e-9) -> List[float]:
    """Sort positions and merge near-duplicates (within ``tolerance``).

    This is the canonical dedup rule for candidate repeater locations; both
    :func:`repro.dp.candidates.merge_candidates` and
    :class:`repro.engine.compiled.CompiledNet` delegate to it so the compiled
    and non-compiled DP paths can never disagree about the candidate set.
    """
    ordered = sorted(positions)
    merged: List[float] = []
    for position in ordered:
        if merged and abs(position - merged[-1]) <= tolerance:
            continue
        merged.append(position)
    return merged
