"""Deterministic random-number helpers.

Every stochastic component in the library (net generators, experiment
protocols) takes an explicit seed and builds its generator through
:func:`make_rng` so that experiments are exactly reproducible run-to-run.
"""

from __future__ import annotations

from typing import Union

import numpy as np

SeedLike = Union[int, np.random.Generator, None]


def make_rng(seed: SeedLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    ``seed`` may be an integer, an existing generator (returned unchanged so
    that callers can thread one generator through a pipeline), or ``None``
    for OS entropy.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def child_rng(base_seed: int, index: int) -> np.random.Generator:
    """Return an independent generator derived from ``(base_seed, index)``.

    Experiments that fan out over many nets use one child per net so that
    net ``i`` is identical no matter how many nets are generated or in which
    order.
    """
    return np.random.default_rng(np.random.SeedSequence([int(base_seed), int(index)]))
