"""Unit conversion helpers.

Everything inside the library is expressed in SI units:

* lengths in meters,
* resistance in ohms (and ohms per meter for unit-length wire resistance),
* capacitance in farads (and farads per meter),
* time in seconds,
* power in watts.

Repeater *widths* are dimensionless multiples of the minimal repeater width
``u`` (the paper's convention: a "80u" repeater is eighty minimal widths).

The helpers below exist so that examples, experiment reports and tests can be
written in the units EDA engineers actually think in (microns, femtofarads,
pico/nanoseconds) without sprinkling magic constants around.
"""

from __future__ import annotations

METERS_PER_MICRON = 1.0e-6
FARADS_PER_FEMTOFARAD = 1.0e-15
SECONDS_PER_PICOSECOND = 1.0e-12
SECONDS_PER_NANOSECOND = 1.0e-9
OHMS_PER_KILOOHM = 1.0e3


def from_microns(value_um: float) -> float:
    """Convert a length in microns to meters."""
    return value_um * METERS_PER_MICRON


def to_microns(value_m: float) -> float:
    """Convert a length in meters to microns."""
    return value_m / METERS_PER_MICRON


def from_femtofarads(value_ff: float) -> float:
    """Convert a capacitance in femtofarads to farads."""
    return value_ff * FARADS_PER_FEMTOFARAD


def to_femtofarads(value_f: float) -> float:
    """Convert a capacitance in farads to femtofarads."""
    return value_f / FARADS_PER_FEMTOFARAD


def from_picoseconds(value_ps: float) -> float:
    """Convert a time in picoseconds to seconds."""
    return value_ps * SECONDS_PER_PICOSECOND


def to_picoseconds(value_s: float) -> float:
    """Convert a time in seconds to picoseconds."""
    return value_s / SECONDS_PER_PICOSECOND


def from_nanoseconds(value_ns: float) -> float:
    """Convert a time in nanoseconds to seconds."""
    return value_ns * SECONDS_PER_NANOSECOND


def to_nanoseconds(value_s: float) -> float:
    """Convert a time in seconds to nanoseconds."""
    return value_s / SECONDS_PER_NANOSECOND


def from_kiloohms(value_kohm: float) -> float:
    """Convert a resistance in kiloohms to ohms."""
    return value_kohm * OHMS_PER_KILOOHM


def to_kiloohms(value_ohm: float) -> float:
    """Convert a resistance in ohms to kiloohms."""
    return value_ohm / OHMS_PER_KILOOHM
