"""Small argument-validation helpers used across the library.

The library is the substrate for optimization algorithms that are easy to
misconfigure (negative capacitance, forbidden zone outside the net, ...), so
constructors validate eagerly and raise :class:`ValidationError` with a
message that names the offending argument.
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence


class ValidationError(ValueError):
    """Raised when a model object is constructed with inconsistent data."""


def require(condition: bool, message: str) -> None:
    """Raise :class:`ValidationError` with ``message`` unless ``condition``."""
    if not condition:
        raise ValidationError(message)


def require_finite(value: float, name: str) -> None:
    """Require that ``value`` is a finite real number."""
    if not math.isfinite(value):
        raise ValidationError(f"{name} must be finite, got {value!r}")


def require_positive(value: float, name: str) -> None:
    """Require that ``value`` is finite and strictly positive."""
    require_finite(value, name)
    if value <= 0.0:
        raise ValidationError(f"{name} must be > 0, got {value!r}")


def require_non_negative(value: float, name: str) -> None:
    """Require that ``value`` is finite and non-negative."""
    require_finite(value, name)
    if value < 0.0:
        raise ValidationError(f"{name} must be >= 0, got {value!r}")


def require_in_range(value: float, low: float, high: float, name: str) -> None:
    """Require ``low <= value <= high``."""
    require_finite(value, name)
    if not (low <= value <= high):
        raise ValidationError(f"{name} must be in [{low}, {high}], got {value!r}")


def require_sorted(values: Sequence[float], name: str, strict: bool = False) -> None:
    """Require that ``values`` is sorted ascending (strictly if ``strict``)."""
    for earlier, later in zip(values, list(values)[1:]):
        if strict:
            require(earlier < later, f"{name} must be strictly increasing, got {list(values)!r}")
        else:
            require(earlier <= later, f"{name} must be non-decreasing, got {list(values)!r}")


def require_non_empty(values: Iterable[object], name: str) -> None:
    """Require that ``values`` contains at least one element."""
    if not list(values):
        raise ValidationError(f"{name} must not be empty")
