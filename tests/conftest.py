"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.net.segment import WireSegment
from repro.net.twopin import TwoPinNet
from repro.net.zones import ForbiddenZone
from repro.tech.nodes import NODE_180NM
from repro.utils.units import from_microns


@pytest.fixture(scope="session")
def tech():
    """The 0.18 µm technology used by the paper's experiments."""
    return NODE_180NM


def build_uniform_net(
    technology,
    *,
    length_um: float = 10000.0,
    segments: int = 4,
    layer: str = "metal4",
    driver_width: float = 120.0,
    receiver_width: float = 60.0,
    zones=(),
    name: str = "uniform",
) -> TwoPinNet:
    """A net made of equal-length segments on a single layer."""
    wire_layer = technology.layer(layer)
    segment_length = from_microns(length_um) / segments
    return TwoPinNet(
        segments=tuple(
            WireSegment.on_layer(wire_layer, segment_length) for _ in range(segments)
        ),
        driver_width=driver_width,
        receiver_width=receiver_width,
        forbidden_zones=tuple(zones),
        name=name,
    )


def build_mixed_net(
    technology,
    *,
    driver_width: float = 120.0,
    receiver_width: float = 60.0,
    zones=(),
    name: str = "mixed",
) -> TwoPinNet:
    """A multi-layer net with unequal segments (metal4 / metal5 / metal3)."""
    m4 = technology.layer("metal4")
    m5 = technology.layer("metal5")
    m3 = technology.layer("metal3")
    return TwoPinNet(
        segments=(
            WireSegment.on_layer(m4, from_microns(2400.0)),
            WireSegment.on_layer(m5, from_microns(1800.0)),
            WireSegment.on_layer(m3, from_microns(1200.0)),
            WireSegment.on_layer(m5, from_microns(2600.0)),
            WireSegment.on_layer(m4, from_microns(2000.0)),
        ),
        driver_width=driver_width,
        receiver_width=receiver_width,
        forbidden_zones=tuple(zones),
        name=name,
    )


@pytest.fixture
def uniform_net(tech):
    """10 mm uniform metal4 net, no forbidden zones."""
    return build_uniform_net(tech)


@pytest.fixture
def mixed_net(tech):
    """10 mm multi-layer net, no forbidden zones."""
    return build_mixed_net(tech)


@pytest.fixture
def zoned_net(tech):
    """Multi-layer net with one forbidden zone in its middle third."""
    return build_mixed_net(
        tech,
        zones=(ForbiddenZone(from_microns(3500.0), from_microns(6000.0)),),
        name="zoned",
    )
