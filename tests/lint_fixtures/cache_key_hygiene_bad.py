"""Positive fixture for R3 (cache-key-hygiene): ad-hoc key construction."""

import json


def protocol_key(config):
    key = repr(config)  # expect: cache-key-hygiene
    return key


def frontier_entry(config):
    return stable_digest(f"{config.kernel}-{config.strategy}")  # expect: cache-key-hygiene


def export(config):
    return json.dumps(config, default=repr)  # expect: cache-key-hygiene
