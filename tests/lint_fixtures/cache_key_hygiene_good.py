"""Negative fixture for R3 (cache-key-hygiene): structured keys and
non-key formatting are fine."""


def protocol_key(config):
    key = ("protocol", config.kernel, config.strategy)
    return key


def describe(config):
    label = f"kernel={config.kernel}"
    return label
