"""Positive fixture for R4 (determinism): ambient entropy and set-order
dependence."""

import random  # expect: determinism
import time

import numpy as np


def jitter(values):
    stamp = time.time()  # expect: determinism
    rng = np.random.default_rng()  # expect: determinism
    order = list(set(values))  # expect: determinism
    return stamp, rng, order


def walk(flags):
    for flag in {"fused", "staged"}:  # expect: determinism
        yield flag
