"""Negative fixture for R4 (determinism): threaded generators, sorted sets
and type references are all allowed."""

import time

import numpy as np


def jitter(values, rng: np.random.Generator):
    started = time.perf_counter()
    order = sorted(set(values))
    noise = rng.standard_normal(len(order))
    return started, order, noise
