"""Positive fixture for R7 (fault-site-registered): computed and missing
site arguments.  (The unknown-site and registered-but-unused halves need
the ``faults.py`` registry module in the same run; they are exercised by
dedicated tests, not fixtures, mirroring the R1 activation gate.)"""

from repro.analysis import faults

SITE_PREFIX = "design"


def run_case(case):
    faults.maybe_inject(SITE_PREFIX + ".case")  # expect: fault-site-registered
    return case


def read_cache(path):
    text = faults.maybe_corrupt(f"wincache.{path.suffix}", path.read_text())  # expect: fault-site-registered
    return text


def bare_call():
    faults.maybe_inject()  # expect: fault-site-registered
