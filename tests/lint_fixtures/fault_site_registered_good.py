"""Negative fixture for R7 (fault-site-registered): literal site names
(validated against the registry only when ``faults.py`` is in the run)."""

from repro.analysis import faults


def run_case(case):
    faults.maybe_inject("design.case")
    return case


def read_cache(path):
    return faults.maybe_corrupt("wincache.disk-read", path.read_text())
