"""Positive fixture for R1 (fingerprint-completeness): a numerics knob the
dp-context fingerprint never references.

The builder is defined in the same file so the rule activates when this
fixture is linted on its own (R1 only fires when ``dp_context_fingerprint``
is part of the run).
"""

from dataclasses import dataclass


@dataclass(frozen=True)
class ToyDpConfig:
    kernel: str = "vectorized"
    traversal: str = "iterative"  # expect: fingerprint-completeness


def dp_context_fingerprint(config):
    return {"kernel": config.kernel}
