"""Negative fixture for R1 (fingerprint-completeness): every knob joins the
fingerprint, either by direct reference or by a dataclasses.fields sweep."""

from dataclasses import dataclass, fields


@dataclass(frozen=True)
class ToyDpConfig:
    kernel: str = "vectorized"
    traversal: str = "iterative"


@dataclass(frozen=True)
class SweptSpec:
    evaluator: str = "compiled"


def dp_context_fingerprint(config):
    return {"kernel": config.kernel, "traversal": config.traversal}


def swept_fingerprint(swept):
    return tuple((field.name, getattr(swept, field.name)) for field in fields(swept))
