"""Positive fixture for R2 (hot-alloc): allocating inside a ``# hot`` kernel.

Each offending line carries a trailing ``# expect: <rule>`` marker that
``tests/test_analysis_linter.py`` compares against the linter's output.
"""

import numpy as np


# hot
def expand_level(front):
    grown = np.empty(2 * len(front))  # expect: hot-alloc
    grown[: len(front)] = front
    grown[len(front) :] = front
    return grown.copy()  # expect: hot-alloc


# hot
def outer_level(front):
    def merge(histories):
        return np.concatenate(histories)  # expect: hot-alloc

    return merge([front, front])
