"""Negative fixture for R2 (hot-alloc): scratch views, a blessed pragma, and
cold-path allocation are all allowed."""

import numpy as np


# hot
def expand_level(front, scratch):
    grown = scratch.arange[: 2 * len(front)]
    grown[: len(front)] = front
    grown[len(front) :] = front
    return grown


# hot
def survivors(front, keep):
    packed = np.empty(len(keep))  # repro-lint: disable=hot-alloc
    packed[:] = front[keep]
    return packed


def cold_setup(length):
    return np.zeros(length)
