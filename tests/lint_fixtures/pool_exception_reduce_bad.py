"""Positive fixture for R6 (pool-exception-reduce): structured __init__
without __reduce__ loses the diagnostic crossing a process pool."""


class WorkerFailure(RuntimeError):  # expect: pool-exception-reduce
    def __init__(self, net_name, detail):
        super().__init__(net_name + ": " + detail)
        self.net_name = net_name
        self.detail = detail
