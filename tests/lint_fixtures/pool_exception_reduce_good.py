"""Negative fixture for R6 (pool-exception-reduce): __reduce__ replays the
original constructor arguments, and message-only exceptions need nothing."""


class WorkerFailure(RuntimeError):
    def __init__(self, net_name, detail):
        super().__init__(net_name + ": " + detail)
        self.net_name = net_name
        self.detail = detail

    def __reduce__(self):
        return (type(self), (self.net_name, self.detail))


class PlainFailure(RuntimeError):
    """No custom __init__: the default reduction already round-trips."""
