"""Positive fixture for R5 (shm-ownership): a publisher with no unlink path
and a worker attach site that unlinks."""

from multiprocessing import shared_memory


class LeakyPublisher:
    def publish(self, size):
        self.shm = shared_memory.SharedMemory(create=True, size=size)  # expect: shm-ownership
        return self.shm.name


def rogue_attach(name):
    shm = shared_memory.SharedMemory(name=name)
    payload = bytes(shm.buf[:8])
    shm.unlink()  # expect: shm-ownership
    return payload
