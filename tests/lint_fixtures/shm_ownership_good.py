"""Negative fixture for R5 (shm-ownership): publisher-owns-unlink done
right — teardown method on the owner, close-only attach site."""

from multiprocessing import shared_memory


class Publisher:
    def __init__(self):
        self._shm = None

    def publish(self, size):
        self._shm = shared_memory.SharedMemory(create=True, size=size)
        return self._shm.name

    def close(self):
        if self._shm is not None:
            self._shm.unlink()
            self._shm = None


def attach_readonly(name):
    shm = shared_memory.SharedMemory(name=name)
    try:
        return bytes(shm.buf[:8])
    finally:
        shm.close()
