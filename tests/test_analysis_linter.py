"""Tests for the repro.analysis AST linter (ISSUE 7).

Every rule R1-R7 is exercised against a positive (violating) and negative
(clean) snippet under ``tests/lint_fixtures/``; the positive fixtures mark
each expected hit with a trailing ``# expect: <rule-id>`` comment, and the
test asserts the linter reports exactly that ``(rule, line)`` set — no
misses, no extras.  The suite also locks down the engine mechanics (pragma
suppression, rule selection, output formats, parse-error reporting, the R1
activation gate) and the satellite-1 guarantee that ``src/repro`` itself
lints clean.
"""

from __future__ import annotations

import re
from pathlib import Path

import pytest

from repro.analysis.linter import (
    Linter,
    available_rules,
    format_github,
    format_text,
    lint_paths,
)
from repro.cli.main import main as cli_main

FIXTURES = Path(__file__).resolve().parent / "lint_fixtures"
REPO_SRC = Path(__file__).resolve().parents[1] / "src" / "repro"

_EXPECT = re.compile(r"#\s*expect:\s*([a-z0-9\-]+)")

RULE_IDS = frozenset(
    {
        "fingerprint-completeness",
        "hot-alloc",
        "cache-key-hygiene",
        "determinism",
        "shm-ownership",
        "pool-exception-reduce",
        "fault-site-registered",
    }
)

STEMS = sorted(path.name[: -len("_bad.py")] for path in FIXTURES.glob("*_bad.py"))


def _expected_markers(path: Path):
    markers = set()
    for lineno, line in enumerate(path.read_text(encoding="utf-8").splitlines(), 1):
        match = _EXPECT.search(line)
        if match:
            markers.add((match.group(1), lineno))
    return markers


def test_registry_is_complete():
    assert set(available_rules()) == RULE_IDS


def test_every_rule_has_a_fixture_pair():
    covered = set()
    for stem in STEMS:
        assert (FIXTURES / f"{stem}_good.py").exists(), stem
        covered |= {rule for rule, _ in _expected_markers(FIXTURES / f"{stem}_bad.py")}
    assert covered == RULE_IDS


@pytest.mark.parametrize("stem", STEMS)
def test_positive_fixture_fires_exactly_at_markers(stem):
    bad = FIXTURES / f"{stem}_bad.py"
    expected = _expected_markers(bad)
    assert expected, f"{bad.name} declares no # expect markers"
    got = {(v.rule, v.line) for v in lint_paths([bad])}
    assert got == expected


@pytest.mark.parametrize("stem", STEMS)
def test_negative_fixture_is_clean(stem):
    good = FIXTURES / f"{stem}_good.py"
    assert lint_paths([good]) == []


def test_source_tree_lints_clean():
    violations = lint_paths([REPO_SRC])
    assert violations == [], format_text(violations)


# --------------------------------------------------------------------------- #
# Engine mechanics


def test_pragma_suppresses_named_rule(tmp_path):
    source = (
        "import numpy as np\n"
        "\n"
        "\n"
        "# hot\n"
        "def kernel(front):\n"
        "    return np.empty(len(front))  # repro-lint: disable=hot-alloc\n"
    )
    path = tmp_path / "pragma_case.py"
    path.write_text(source)
    assert lint_paths([path]) == []
    path.write_text(source.replace("  # repro-lint: disable=hot-alloc", ""))
    assert [v.rule for v in lint_paths([path])] == ["hot-alloc"]


def test_pragma_disable_all(tmp_path):
    path = tmp_path / "pragma_all.py"
    path.write_text(
        "import random  # repro-lint: disable=all\n"
    )
    assert lint_paths([path]) == []


def test_rule_selection_restricts_output():
    bad = FIXTURES / "determinism_bad.py"
    assert lint_paths([bad], rules=["hot-alloc"]) == []
    assert {v.rule for v in lint_paths([bad], rules=["determinism"])} == {
        "determinism"
    }


def test_unknown_rule_rejected():
    with pytest.raises(ValueError, match="unknown lint rules: no-such-rule"):
        Linter(["no-such-rule"])


def test_parse_error_is_reported_not_raised(tmp_path):
    path = tmp_path / "broken.py"
    path.write_text("def incomplete(:\n")
    violations = lint_paths([path])
    assert [v.rule for v in violations] == ["parse"]


def test_fingerprint_rule_inactive_without_dp_context_builder(tmp_path):
    # The same uncovered knob as the positive fixture, but the run contains
    # no dp_context_fingerprint builder: R1 must stay silent rather than
    # flag knobs against builders it cannot see.
    path = tmp_path / "lone_config.py"
    path.write_text(
        "class ToyDpConfig:\n"
        "    traversal: str = 'iterative'\n"
    )
    assert lint_paths([path]) == []


_REGISTRY_SNIPPET = (
    "SITES = {\n"
    "    'design.case': 'per-net design task',\n"
    "    'wincache.disk-read': 'disk tier read',\n"
    "}\n"
)


def test_fault_site_unknown_site_needs_registry_in_run(tmp_path):
    # A literal-but-unregistered site is only flaggable when the run
    # contains the faults.py SITES registry (mirrors the R1 gate).
    caller = tmp_path / "caller.py"
    caller.write_text(
        "from repro.analysis import faults\n"
        "\n"
        "\n"
        "def go():\n"
        "    faults.maybe_inject('design.caes')\n"  # typo'd site
    )
    assert lint_paths([caller], rules=["fault-site-registered"]) == []
    registry = tmp_path / "faults.py"
    registry.write_text(_REGISTRY_SNIPPET)
    violations = lint_paths([caller, registry], rules=["fault-site-registered"])
    assert {(v.rule, Path(v.path).name) for v in violations} == {
        ("fault-site-registered", "caller.py"),
        # 'wincache.disk-read' is registered but never called in this run.
        ("fault-site-registered", "faults.py"),
    }
    assert any("unregistered fault site 'design.caes'" in v.message for v in violations)
    assert any("never passed to maybe_inject" in v.message for v in violations)


def test_fault_site_exercised_registry_is_clean(tmp_path):
    caller = tmp_path / "caller.py"
    caller.write_text(
        "from repro.analysis import faults\n"
        "\n"
        "\n"
        "def go(path):\n"
        "    faults.maybe_inject('design.case')\n"
        "    return faults.maybe_corrupt('wincache.disk-read', path.read_text())\n"
    )
    registry = tmp_path / "faults.py"
    registry.write_text(_REGISTRY_SNIPPET)
    assert lint_paths([caller, registry], rules=["fault-site-registered"]) == []


def test_violations_sorted_and_rendered():
    violations = lint_paths([FIXTURES / "determinism_bad.py"])
    assert violations == sorted(
        violations, key=lambda v: (v.path, v.line, v.rule)
    )
    rendered = format_text(violations)
    assert "[determinism]" in rendered
    assert rendered.endswith(f"{len(violations)} violations found")
    assert format_text([]) == "no violations found"


def test_github_format_annotations():
    violations = lint_paths([FIXTURES / "hot_alloc_bad.py"])
    lines = format_github(violations).splitlines()
    assert len(lines) == len(violations)
    for violation, line in zip(violations, lines):
        assert line.startswith(
            f"::error file={violation.path},line={violation.line},"
            f"title=repro-lint({violation.rule})::"
        )


# --------------------------------------------------------------------------- #
# CLI surface


def test_cli_lint_clean_tree_exits_zero(capsys):
    assert cli_main(["lint", str(REPO_SRC)]) == 0
    assert "no violations found" in capsys.readouterr().out


def test_cli_lint_violations_exit_one(capsys):
    assert cli_main(["lint", str(FIXTURES / "hot_alloc_bad.py")]) == 1
    out = capsys.readouterr().out
    assert "[hot-alloc]" in out
    assert "violations found" in out


def test_cli_lint_github_format(capsys):
    assert (
        cli_main(
            ["lint", str(FIXTURES / "hot_alloc_bad.py"), "--format=github"]
        )
        == 1
    )
    assert "::error file=" in capsys.readouterr().out


def test_cli_lint_rule_selection_and_unknown_rule(capsys):
    assert (
        cli_main(
            ["lint", str(FIXTURES / "determinism_bad.py"), "--rules=hot-alloc"]
        )
        == 0
    )
    capsys.readouterr()
    assert cli_main(["lint", str(FIXTURES), "--rules=bogus"]) == 2
    assert "unknown lint rules" in capsys.readouterr().err


def test_cli_lint_list_rules(capsys):
    assert cli_main(["lint", "--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule_id in RULE_IDS:
        assert rule_id in out
