"""Tests for the analytical substrate: Bakoglu closed form, derivatives, width solvers."""

import numpy as np
import pytest

from repro.analytical.bakoglu import (
    delay_optimal_uniform_insertion,
    power_optimal_width_sweep,
    uniform_buffered_delay,
)
from repro.analytical.derivatives import (
    delay_width_gradient,
    location_derivatives,
    stage_lumped_rc,
)
from repro.analytical.width_solver import DualBisectionWidthSolver, NewtonKktWidthSolver
from repro.delay.elmore import buffered_net_delay, unbuffered_net_delay
from repro.utils.units import from_microns
from repro.utils.validation import ValidationError

from tests.conftest import build_uniform_net


# --------------------------------------------------------------------------- #
# Bakoglu closed form
# --------------------------------------------------------------------------- #
def test_uniform_design_improves_on_unbuffered(tech):
    net = build_uniform_net(tech, length_um=15000.0, segments=5)
    layer = tech.layer("metal4")
    design = delay_optimal_uniform_insertion(
        tech, net.total_length, layer.resistance_per_meter, layer.capacitance_per_meter
    )
    assert design.num_repeaters >= 1
    delay = buffered_net_delay(
        net, tech, list(design.positions), [design.width] * design.num_repeaters
    )
    assert delay < unbuffered_net_delay(net, tech)


def test_uniform_design_width_near_sqrt_formula(tech):
    layer = tech.layer("metal4")
    length = from_microns(20000.0)
    design = delay_optimal_uniform_insertion(
        tech, length, layer.resistance_per_meter, layer.capacitance_per_meter
    )
    repeater = tech.repeater
    expected = np.sqrt(
        repeater.unit_resistance
        * layer.capacitance_per_meter
        / (layer.resistance_per_meter * repeater.unit_input_capacitance)
    )
    assert design.width == pytest.approx(expected, rel=1e-6)


def test_uniform_design_positions_equally_spaced(tech):
    layer = tech.layer("metal5")
    length = from_microns(18000.0)
    design = delay_optimal_uniform_insertion(
        tech, length, layer.resistance_per_meter, layer.capacitance_per_meter
    )
    spacing = np.diff([0.0, *design.positions, length])
    assert np.allclose(spacing, spacing[0])


def test_uniform_buffered_delay_has_shallow_minimum_in_stages(tech):
    layer = tech.layer("metal4")
    length = from_microns(20000.0)
    resistance = layer.resistance_per_meter * length
    capacitance = layer.capacitance_per_meter * length
    design = delay_optimal_uniform_insertion(
        tech, length, layer.resistance_per_meter, layer.capacitance_per_meter
    )
    optimal_stages = design.num_repeaters + 1
    optimal = uniform_buffered_delay(tech, resistance, capacitance, optimal_stages, design.width)
    much_fewer = uniform_buffered_delay(tech, resistance, capacitance, 1, design.width)
    many_more = uniform_buffered_delay(
        tech, resistance, capacitance, optimal_stages * 4, design.width
    )
    assert optimal < much_fewer
    assert optimal < many_more


def test_power_optimal_width_sweep_meets_target(tech):
    layer = tech.layer("metal4")
    length = from_microns(15000.0)
    resistance = layer.resistance_per_meter * length
    capacitance = layer.capacitance_per_meter * length
    design = delay_optimal_uniform_insertion(
        tech, length, layer.resistance_per_meter, layer.capacitance_per_meter
    )
    stages = design.num_repeaters + 1
    target = 1.3 * design.estimated_delay
    width, curve = power_optimal_width_sweep(tech, resistance, capacitance, stages, target)
    assert uniform_buffered_delay(tech, resistance, capacitance, stages, width) <= target
    # the chosen width is the smallest one meeting the target along the curve
    cheaper = [w for w, d in curve if w < width]
    assert all(
        uniform_buffered_delay(tech, resistance, capacitance, stages, w) > target for w in cheaper
    )


def test_power_optimal_width_sweep_impossible_target(tech):
    layer = tech.layer("metal4")
    with pytest.raises(ValidationError):
        power_optimal_width_sweep(tech, 1000.0, 5e-12, 1, 1e-12, max_width=50.0)


# --------------------------------------------------------------------------- #
# lumped stage RC and derivatives
# --------------------------------------------------------------------------- #
def test_stage_lumped_rc_totals(tech, mixed_net):
    positions = [0.3 * mixed_net.total_length, 0.6 * mixed_net.total_length]
    stage_r, stage_c = stage_lumped_rc(mixed_net, positions)
    assert len(stage_r) == 3
    assert sum(stage_r) == pytest.approx(mixed_net.total_resistance)
    assert sum(stage_c) == pytest.approx(mixed_net.total_capacitance)


def test_delay_width_gradient_matches_finite_difference(tech, mixed_net):
    positions = [0.35 * mixed_net.total_length, 0.7 * mixed_net.total_length]
    widths = [120.0, 70.0]
    gradient = delay_width_gradient(mixed_net, tech, positions, widths)
    step = 1e-4
    for index in range(len(widths)):
        bumped_up = list(widths)
        bumped_down = list(widths)
        bumped_up[index] += step
        bumped_down[index] -= step
        numeric = (
            buffered_net_delay(mixed_net, tech, positions, bumped_up)
            - buffered_net_delay(mixed_net, tech, positions, bumped_down)
        ) / (2 * step)
        assert gradient[index] == pytest.approx(numeric, rel=1e-4)


def test_location_derivatives_match_finite_difference_inside_segment(tech, uniform_net):
    # Inside a uniform segment the left and right derivatives coincide and
    # must match the numerical derivative of the exact Elmore delay.
    positions = [0.42 * uniform_net.total_length]
    widths = [90.0]
    derivative = location_derivatives(uniform_net, tech, positions, widths)[0]
    assert derivative.left == pytest.approx(derivative.right, rel=1e-12)

    step = from_microns(0.5)
    delay_plus = buffered_net_delay(uniform_net, tech, [positions[0] + step], widths)
    delay_minus = buffered_net_delay(uniform_net, tech, [positions[0] - step], widths)
    numeric = (delay_plus - delay_minus) / (2 * step)
    assert derivative.right == pytest.approx(numeric, rel=1e-6)


def test_location_derivatives_one_sided_at_layer_boundary(tech, mixed_net):
    boundary = float(mixed_net.boundaries[1])  # metal4 -> metal5
    derivatives = location_derivatives(mixed_net, tech, [boundary], [100.0])[0]
    assert derivatives.left != pytest.approx(derivatives.right)


def test_location_derivatives_count(tech, mixed_net):
    positions = [0.2, 0.5, 0.8]
    positions = [p * mixed_net.total_length for p in positions]
    widths = [50.0, 60.0, 70.0]
    assert len(location_derivatives(mixed_net, tech, positions, widths)) == 3


# --------------------------------------------------------------------------- #
# width solvers
# --------------------------------------------------------------------------- #
@pytest.fixture(scope="module")
def solver_net(tech):
    return build_uniform_net(tech, length_um=14000.0, segments=7)


def _equally_spaced(net, count):
    return [net.total_length * (i + 1) / (count + 1) for i in range(count)]


def test_dual_solver_meets_timing_target(tech, solver_net):
    solver = DualBisectionWidthSolver(tech)
    positions = _equally_spaced(solver_net, 3)
    tight = 0.75 * unbuffered_net_delay(solver_net, tech)
    solution = solver.solve(solver_net, positions, tight)
    assert solution.feasible
    assert solution.delay <= tight * (1.0 + 1e-6)
    # the delay constraint is active at the optimum (Eq. 5)
    assert solution.delay == pytest.approx(tight, rel=2e-3)


def test_dual_solver_kkt_residuals_small(tech, solver_net):
    solver = DualBisectionWidthSolver(tech)
    positions = _equally_spaced(solver_net, 3)
    target = 0.7 * unbuffered_net_delay(solver_net, tech)
    solution = solver.solve(solver_net, positions, target)
    gradient = delay_width_gradient(
        solver_net, tech, positions, list(solution.widths)
    )
    residuals = 1.0 + solution.lagrange_multiplier * gradient
    # Interior (unclamped) widths satisfy Eq. (8) closely.
    interior = [
        r
        for r, w in zip(residuals, solution.widths)
        if 1.0 + 1e-6 < w < tech.repeater.max_width - 1e-6
    ]
    assert interior, "expected at least one interior width"
    assert max(abs(r) for r in interior) < 5e-2


def test_dual_solver_looser_target_needs_less_width(tech, solver_net):
    solver = DualBisectionWidthSolver(tech)
    positions = _equally_spaced(solver_net, 3)
    base = unbuffered_net_delay(solver_net, tech)
    tight = solver.solve(solver_net, positions, 0.7 * base)
    loose = solver.solve(solver_net, positions, 0.9 * base)
    assert tight.feasible and loose.feasible
    assert loose.total_width < tight.total_width


def test_dual_solver_infeasible_target_detected(tech, solver_net):
    solver = DualBisectionWidthSolver(tech)
    positions = _equally_spaced(solver_net, 1)
    # far below anything a single repeater can reach
    solution = solver.solve(solver_net, positions, 1e-12)
    assert not solution.feasible


def test_dual_solver_no_repeaters(tech, solver_net):
    solver = DualBisectionWidthSolver(tech)
    loose = solver.solve(solver_net, [], 10.0)
    assert loose.widths == ()
    assert loose.feasible
    tight = solver.solve(solver_net, [], 1e-12)
    assert not tight.feasible


def test_dual_solver_widths_within_bounds(tech, solver_net):
    solver = DualBisectionWidthSolver(tech, min_width=5.0, max_width=300.0)
    positions = _equally_spaced(solver_net, 4)
    solution = solver.solve(solver_net, positions, 0.8 * unbuffered_net_delay(solver_net, tech))
    assert all(5.0 - 1e-9 <= w <= 300.0 + 1e-9 for w in solution.widths)


def test_newton_solver_agrees_with_dual(tech, solver_net):
    positions = _equally_spaced(solver_net, 3)
    target = 0.75 * unbuffered_net_delay(solver_net, tech)
    dual = DualBisectionWidthSolver(tech).solve(solver_net, positions, target)
    newton = NewtonKktWidthSolver(tech).solve(solver_net, positions, target)
    assert newton.feasible
    assert newton.total_width == pytest.approx(dual.total_width, rel=2e-2)
    assert newton.delay <= target * (1.0 + 1e-6)


def test_newton_solver_infeasible_falls_back(tech, solver_net):
    positions = _equally_spaced(solver_net, 1)
    solution = NewtonKktWidthSolver(tech).solve(solver_net, positions, 1e-12)
    assert not solution.feasible
