"""Bit-exactness of the compiled analytical kernels vs. the scalar oracles.

ISSUE 5 finishes compiling the analytical layer: the width solver's
Gauss-Seidel sweep runs on hoisted native-float coefficient vectors, the
location derivatives evaluate through the batched
:meth:`TwoPinNet.unit_rc_at_batch` position lookup, and the compiled
Elmore evaluator aggregates its stage coefficients with whole-vector
expressions.  Every one of them is selectable against the legacy scalar
loop (``sweep="scalar"`` / ``RefineConfig.analytical="scalar"`` /
``CompiledElmoreEvaluator(analytical="scalar")``), and the pairs must
agree **bit for bit** — including the clamped, degenerate and duplicate
shapes below.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analytical.derivatives import (
    location_derivative_arrays,
    location_derivatives,
    stage_lumped_rc,
    stage_lumped_rc_vectorized,
)
from repro.analytical.width_solver import (
    DualBisectionWidthSolver,
    NewtonKktWidthSolver,
)
from repro.core.refine import Refine, RefineConfig
from repro.core.solution import InsertionSolution
from repro.delay.compiled import CompiledElmoreEvaluator
from repro.engine.cache import ProtocolConfig, ProtocolStore
from repro.tech.nodes import NODE_180NM

from tests.conftest import build_mixed_net, build_uniform_net

POPULATION = ProtocolConfig(num_nets=3, targets_per_net=4, seed=2005)


@pytest.fixture(scope="module")
def cases():
    return ProtocolStore().cases(POPULATION)


def _seeded_positions(net, rng, count):
    return sorted(float(p) for p in rng.uniform(1e-6, net.total_length - 1e-6, count))


def _solution_signature(solution):
    return (
        solution.widths,
        solution.lagrange_multiplier,
        solution.delay,
        solution.total_width,
        solution.feasible,
        solution.iterations,
    )


# --------------------------------------------------------------------------- #
# batched position lookups and stage aggregation
# --------------------------------------------------------------------------- #
def test_unit_rc_at_batch_bitwise_equal(tech):
    rng = np.random.default_rng(7)
    for net in (build_uniform_net(tech), build_mixed_net(tech)):
        positions = _seeded_positions(net, rng, 13)
        # Include exact segment boundaries and duplicates: the side
        # selection of the scalar lookup must be reproduced.
        positions += [float(b) for b in net.boundaries[1:-1]]
        positions += [positions[0], positions[0]]
        for downstream in (True, False):
            res, cap = net.unit_rc_at_batch(positions, downstream=downstream)
            for k, position in enumerate(positions):
                scalar = net.unit_rc_at(position, downstream=downstream)
                assert (res[k], cap[k]) == scalar


def test_unit_rc_at_batch_rejects_bad_positions(tech):
    net = build_uniform_net(tech)
    with pytest.raises(Exception):
        net.unit_rc_at_batch([-1.0])
    with pytest.raises(Exception):
        net.unit_rc_at_batch([net.total_length * 2.0])


def test_stage_lumped_rc_vectorized_bitwise_equal(tech):
    rng = np.random.default_rng(11)
    for net in (build_uniform_net(tech), build_mixed_net(tech)):
        for count in (0, 1, 5, 9):
            positions = _seeded_positions(net, rng, count)
            scalar = stage_lumped_rc(net, positions)
            fast = stage_lumped_rc_vectorized(net, positions)
            assert fast[0].tolist() == scalar[0].tolist()
            assert fast[1].tolist() == scalar[1].tolist()
        # Duplicate cut points: zero-length stages must match exactly.
        positions = _seeded_positions(net, rng, 4)
        doubled = sorted(positions + [positions[1]])
        scalar = stage_lumped_rc(net, doubled)
        fast = stage_lumped_rc_vectorized(net, doubled)
        assert fast[0].tolist() == scalar[0].tolist()
        assert fast[1].tolist() == scalar[1].tolist()


def test_compiled_evaluator_vectorized_ctor_bitwise_equal(tech):
    """Vectorized stage aggregation == the walked per-stage loop."""
    rng = np.random.default_rng(3)
    for net in (build_uniform_net(tech), build_mixed_net(tech)):
        for count in (0, 1, 4, 8, 15):
            positions = _seeded_positions(net, rng, count)
            fast = CompiledElmoreEvaluator(net, tech, positions)
            slow = CompiledElmoreEvaluator(net, tech, positions, analytical="scalar")
            widths = [float(w) for w in rng.uniform(10.0, 400.0, count)]
            assert fast.stage_delays(widths) == slow.stage_delays(widths)
            assert fast.net_delay(widths) == slow.net_delay(widths)
            assert fast.delay_width_gradient(widths).tolist() == (
                slow.delay_width_gradient(widths).tolist()
            )
            fast_rc = fast.stage_lumped_rc()
            slow_rc = slow.stage_lumped_rc()
            assert fast_rc[0].tolist() == slow_rc[0].tolist()
            assert fast_rc[1].tolist() == slow_rc[1].tolist()


def test_compiled_evaluator_fast_total_validation(tech):
    """The native-float total path raises the scalar path's exact errors."""
    net = build_uniform_net(tech)
    positions = [net.total_length / 3.0, 2.0 * net.total_length / 3.0]
    evaluator = CompiledElmoreEvaluator(net, tech, positions)
    with pytest.raises(Exception, match="same length"):
        evaluator.net_delay([100.0])
    with pytest.raises(Exception, match="finite"):
        evaluator.net_delay([100.0, float("nan")])
    with pytest.raises(Exception, match="> 0"):
        evaluator.net_delay([100.0, -1.0])
    with pytest.raises(Exception, match="finite"):
        # Finiteness is checked for the whole vector before positivity,
        # exactly like the array path.
        evaluator.net_delay([-1.0, float("nan")])


# --------------------------------------------------------------------------- #
# the Gauss-Seidel sweep
# --------------------------------------------------------------------------- #
def test_fixed_point_vectorized_bitwise_equal(tech):
    rng = np.random.default_rng(19)
    vectorized = DualBisectionWidthSolver(tech, sweep="vectorized")
    scalar = DualBisectionWidthSolver(tech, sweep="scalar")
    for net in (build_uniform_net(tech), build_mixed_net(tech)):
        for count in (1, 3, 8):
            positions = _seeded_positions(net, rng, count)
            resistance, capacitance = stage_lumped_rc(net, positions)
            for lam in (1e-30, 1e-12, 1.0, 1e18):  # huge/tiny: clamp regimes
                start = rng.uniform(5.0, 500.0, count)
                fast = vectorized._fixed_point(
                    lam, resistance, capacitance, net, start.copy()
                )
                slow = scalar._fixed_point(
                    lam, resistance, capacitance, net, start.copy()
                )
                assert fast.tolist() == slow.tolist()


def test_fixed_point_vectorized_clamps(tech):
    """Min/max width clamps engage identically in both sweeps."""
    net = build_uniform_net(tech)
    positions = [net.total_length / 2.0]
    resistance, capacitance = stage_lumped_rc(net, positions)
    vectorized = DualBisectionWidthSolver(tech, sweep="vectorized")
    scalar = DualBisectionWidthSolver(tech, sweep="scalar")
    repeater = NODE_180NM.repeater
    for lam in (1e-25, 1e25):
        start = np.array([0.5])  # below min: the entry clamp engages too
        fast = vectorized._fixed_point(lam, resistance, capacitance, net, start.copy())
        slow = scalar._fixed_point(lam, resistance, capacitance, net, start.copy())
        assert fast.tolist() == slow.tolist()
    tiny = vectorized._fixed_point(1e-25, resistance, capacitance, net, np.array([0.5]))
    assert tiny[0] == repeater.min_width
    # The max clamp: a start above the ceiling is clamped on entry in both.
    high = np.array([repeater.max_width * 3.0])
    fast = vectorized._fixed_point(1e25, resistance, capacitance, net, high.copy())
    slow = scalar._fixed_point(1e25, resistance, capacitance, net, high.copy())
    assert fast.tolist() == slow.tolist()


def test_fixed_point_zero_repeaters(tech):
    """n = 0 never reaches the sweep through ``solve`` (which returns
    early), and the scalar loop's termination check cannot reduce an empty
    vector — the vectorized sweep still degrades gracefully."""
    net = build_uniform_net(tech)
    resistance, capacitance = stage_lumped_rc(net, [])
    vectorized = DualBisectionWidthSolver(tech, sweep="vectorized")
    fast = vectorized._fixed_point(1.0, resistance, capacitance, net, np.empty(0))
    assert fast.tolist() == []


@pytest.mark.parametrize("solver_cls", [DualBisectionWidthSolver, NewtonKktWidthSolver])
def test_width_solver_sweep_modes_identical(cases, solver_cls):
    """Full solves agree bit-for-bit between the sweeps, warm and cold."""
    vectorized = solver_cls(NODE_180NM, sweep="vectorized")
    scalar = solver_cls(NODE_180NM, sweep="scalar")
    rng = np.random.default_rng(23)
    for case in cases:
        positions = _seeded_positions(case.net, rng, 5)
        for factor in (1.1, 1.6):
            target = factor * case.tau_min
            fast = vectorized.solve(case.net, positions, target)
            slow = scalar.solve(case.net, positions, target)
            assert _solution_signature(fast) == _solution_signature(slow)
            seeded_fast = vectorized.solve(
                case.net, positions, target, initial_lambda=fast.lagrange_multiplier
            )
            seeded_slow = scalar.solve(
                case.net, positions, target, initial_lambda=slow.lagrange_multiplier
            )
            assert _solution_signature(seeded_fast) == _solution_signature(seeded_slow)


def test_width_solver_zero_positions_identical(cases):
    case = cases[0]
    vectorized = DualBisectionWidthSolver(NODE_180NM, sweep="vectorized")
    scalar = DualBisectionWidthSolver(NODE_180NM, sweep="scalar")
    target = 1.5 * case.tau_min
    assert _solution_signature(
        vectorized.solve(case.net, [], target)
    ) == _solution_signature(scalar.solve(case.net, [], target))


def test_width_solver_rejects_unknown_sweep(tech):
    with pytest.raises(Exception):
        DualBisectionWidthSolver(tech, sweep="nonsense")
    with pytest.raises(Exception):
        RefineConfig(analytical="nonsense")


# --------------------------------------------------------------------------- #
# location derivatives and the REFINE move loop
# --------------------------------------------------------------------------- #
def test_location_derivative_arrays_bitwise_equal(tech):
    rng = np.random.default_rng(31)
    for net in (build_uniform_net(tech), build_mixed_net(tech)):
        for count in (0, 1, 6):
            positions = _seeded_positions(net, rng, count)
            widths = [float(w) for w in rng.uniform(10.0, 400.0, count)]
            left, right = location_derivative_arrays(net, tech, positions, widths)
            scalar = location_derivatives(net, tech, positions, widths)
            assert left.tolist() == [d.left for d in scalar]
            assert right.tolist() == [d.right for d in scalar]
        # Boundary and duplicate positions: the up/downstream segment
        # side selection must match the scalar lookups exactly.
        boundary = float(net.boundaries[1])
        positions = sorted([boundary, boundary, net.total_length * 0.7])
        widths = [120.0, 80.0, 40.0]
        left, right = location_derivative_arrays(net, tech, positions, widths)
        scalar = location_derivatives(net, tech, positions, widths)
        assert left.tolist() == [d.left for d in scalar]
        assert right.tolist() == [d.right for d in scalar]


def test_refine_analytical_modes_identical(cases):
    """Whole REFINE runs agree bit-for-bit between analytical modes."""

    def refine_all(analytical):
        refine = Refine(
            NODE_180NM, config=RefineConfig(analytical=analytical, warm_start=False)
        )
        rows = []
        rng = np.random.default_rng(41)
        for case in cases:
            positions = _seeded_positions(case.net, rng, 4)
            widths = [float(w) for w in rng.uniform(40.0, 300.0, 4)]
            initial = InsertionSolution.from_lists(positions, widths)
            for factor in (1.15, 1.5):
                result = refine.run(case.net, initial, factor * case.tau_min)
                rows.append(
                    (
                        result.feasible,
                        result.solution.positions,
                        result.solution.widths,
                        result.delay,
                        result.total_width,
                        result.lagrange_multiplier,
                        result.iterations,
                        result.moves_applied,
                    )
                )
        return rows

    assert refine_all("vectorized") == refine_all("scalar")
