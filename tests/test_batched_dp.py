"""Property suite for the cross-target/cross-net level-batched DP (ISSUE 6).

The batched core runs many DP problems in lockstep through one set of
segment-id kernels (:func:`repro.engine.kernels.fused_level_batched` and its
2-D variant).  Its contract is **bit-for-bit** identity with the fused and
staged cores per problem — regardless of how problems are mixed inside a
batch: different nets, different libraries, different level counts (problems
join and leave the lockstep as they start/finish), fronts that prune down to
one state while a sibling segment stays wide, and scratch arenas reused
across batch generations.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.rip import Rip, RipConfig
from repro.dp.powerdp import PowerAwareDp
from repro.dp.pruning import PruningConfig
from repro.dp.vanginneken import DelayOptimalDp
from repro.engine.batched import BatchedDpDriver, DpProblem
from repro.engine.cache import ProtocolConfig, ProtocolStore
from repro.engine.kernels import DpScratch
from repro.tech.library import RepeaterLibrary
from repro.tech.nodes import NODE_180NM

from tests.conftest import build_mixed_net, build_uniform_net

POPULATION = ProtocolConfig(num_nets=4, targets_per_net=4, seed=2005)


@pytest.fixture(scope="module")
def cases():
    return ProtocolStore().cases(POPULATION)


def _frontier_signature(result):
    return [
        (point.delay, point.total_width, point.solution.positions, point.solution.widths)
        for point in result.frontier.points
    ]


def _statistics_signature(result):
    stats = result.statistics
    return (stats.num_candidates, stats.library_size, stats.states_generated, stats.max_front_size)


def _solution_signature(solution):
    return (solution.delay, solution.total_width, solution.positions, solution.widths)


@pytest.mark.parametrize(
    "strategy, granularity",
    [
        ("full", 10.0),
        ("full", 40.0),
        ("full", 130.0),
        ("bucket", 130.0),
    ],
)
def test_batched_power_dp_bitwise_equal(cases, strategy, granularity):
    """Whole-population batches match fused and staged per problem."""
    library = RepeaterLibrary.uniform(10.0, 400.0, granularity)
    pruning = PruningConfig(strategy=strategy)
    fused = PowerAwareDp(NODE_180NM, pruning=pruning, core="fused")
    staged = PowerAwareDp(NODE_180NM, pruning=pruning, core="staged")
    driver = BatchedDpDriver(NODE_180NM, pruning=pruning)
    batch = driver.run_power(
        [DpProblem(case.net, library, None, case.candidates) for case in cases]
    )
    for case, batched in zip(cases, batch):
        fast = fused.run(case.net, library, case.candidates)
        slow = staged.run(case.net, library, case.candidates)
        assert _frontier_signature(batched) == _frontier_signature(fast)
        assert _frontier_signature(batched) == _frontier_signature(slow)
        assert _statistics_signature(batched) == _statistics_signature(fast)


def test_batched_core_single_problem(cases):
    """core="batched" on the one-problem DP front: a degenerate batch."""
    library = RepeaterLibrary.uniform(10.0, 400.0, 40.0)
    batched = PowerAwareDp(NODE_180NM, core="batched")
    fused = PowerAwareDp(NODE_180NM, core="fused")
    assert batched.core == "batched"
    for case in cases[:2]:
        fast = fused.run(case.net, library, case.candidates)
        one = batched.run(case.net, library, case.candidates)
        assert _frontier_signature(one) == _frontier_signature(fast)
        assert _statistics_signature(one) == _statistics_signature(fast)


def test_batched_mixed_length_batch(cases, tech):
    """Problems with very different level counts join/leave the lockstep.

    Nets with 0, 1, a handful and dozens of candidate positions finish at
    different lockstep steps; survivors must keep their own results exact
    while segments retire and the concatenated front compacts.
    """
    library = RepeaterLibrary.uniform(40.0, 400.0, 60.0)
    mixed = build_mixed_net(tech)
    uniform = build_uniform_net(tech)
    problems = [
        DpProblem(mixed, library, None, ()),  # zero levels
        DpProblem(uniform, library, None, (uniform.total_length / 2.0,)),
        DpProblem(mixed, library, None, tuple(i * 1000.0e-6 for i in range(1, 8))),
        DpProblem(cases[0].net, library, None, cases[0].candidates),
        DpProblem(cases[1].net, library, None, cases[1].candidates),
    ]
    driver = BatchedDpDriver(NODE_180NM)
    fused = PowerAwareDp(NODE_180NM, core="fused")
    results = driver.run_power(problems)
    assert len(driver.front_size_history) > 0
    for problem, batched in zip(problems, results):
        solo = fused.run(problem.net, problem.library, problem.candidate_positions)
        assert _frontier_signature(batched) == _frontier_signature(solo)
        assert _statistics_signature(batched) == _statistics_signature(solo)


def test_batched_all_pruned_segments(tech):
    """Huge tolerances collapse every segment's front to one state."""
    net = build_uniform_net(tech)
    library = RepeaterLibrary.uniform(40.0, 400.0, 120.0)
    pruning = PruningConfig(delay_tolerance=10.0, width_tolerance=1e6)
    candidates = tuple(i * 500.0e-6 for i in range(1, 20))
    driver = BatchedDpDriver(NODE_180NM, pruning=pruning)
    fused = PowerAwareDp(NODE_180NM, pruning=pruning, core="fused")
    results = driver.run_power(
        [DpProblem(net, library, None, candidates) for _ in range(3)]
    )
    solo = fused.run(net, library, candidates)
    for batched in results:
        assert batched.statistics.max_front_size == 1
        assert _frontier_signature(batched) == _frontier_signature(solo)
        assert _statistics_signature(batched) == _statistics_signature(solo)


def test_batched_mixed_pruned_and_wide_segments(cases, tech):
    """A one-state segment rides alongside wide ones in the same lockstep."""
    library = RepeaterLibrary.uniform(40.0, 400.0, 120.0)
    single_width = RepeaterLibrary.from_widths([120.0])
    net = build_uniform_net(tech)
    problems = [
        DpProblem(net, single_width, None, tuple(i * 1000.0e-6 for i in range(1, 10))),
        DpProblem(cases[0].net, library, None, cases[0].candidates),
    ]
    driver = BatchedDpDriver(NODE_180NM)
    fused = PowerAwareDp(NODE_180NM, core="fused")
    for problem, batched in zip(problems, driver.run_power(problems)):
        solo = fused.run(problem.net, problem.library, problem.candidate_positions)
        assert _frontier_signature(batched) == _frontier_signature(solo)


def test_batched_scratch_reuse_across_batch_generations(cases):
    """One scratch arena reused across several batch runs stays bit-exact."""
    shared = DpScratch(capacity=16)  # tiny: force geometric growth
    driver = BatchedDpDriver(NODE_180NM, scratch=shared)
    fused = PowerAwareDp(NODE_180NM, core="fused")
    for granularity in (130.0, 40.0):
        library = RepeaterLibrary.uniform(10.0, 400.0, granularity)
        problems = [
            DpProblem(case.net, library, None, case.candidates) for case in cases[:3]
        ]
        for case, batched in zip(cases, driver.run_power(problems)):
            solo = fused.run(case.net, library, case.candidates)
            assert _frontier_signature(batched) == _frontier_signature(solo)
    assert shared.grows > 1  # the arena actually grew geometrically


def test_batched_max_in_flight_window(cases):
    """A tiny in-flight cap streams problems through without changing bits."""
    library = RepeaterLibrary.uniform(10.0, 400.0, 60.0)
    driver = BatchedDpDriver(NODE_180NM, max_in_flight=2)
    fused = PowerAwareDp(NODE_180NM, core="fused")
    problems = [DpProblem(case.net, library, None, case.candidates) for case in cases]
    for case, batched in zip(cases, driver.run_power(problems)):
        solo = fused.run(case.net, library, case.candidates)
        assert _frontier_signature(batched) == _frontier_signature(solo)
        assert _statistics_signature(batched) == _statistics_signature(solo)


def test_batched_delay_optimal_bitwise_equal(cases, tech):
    """The 2-D (van Ginneken) lockstep matches the fused 2-D core."""
    library = RepeaterLibrary.uniform(10.0, 400.0, 10.0)
    driver = BatchedDpDriver(NODE_180NM)
    fused = DelayOptimalDp(NODE_180NM, core="fused")
    net = build_uniform_net(tech)
    problems = [DpProblem(case.net, library, None, case.candidates) for case in cases]
    problems.append(DpProblem(net, library, None, ()))  # zero-level straggler
    solutions = driver.run_delay_optimal(problems)
    for problem, batched in zip(problems, solutions):
        solo = fused.run(problem.net, problem.library, problem.candidate_positions)
        assert _solution_signature(batched) == _solution_signature(solo)
    batched_core = DelayOptimalDp(NODE_180NM, core="batched")
    assert batched_core.core == "batched"
    one = batched_core.run(cases[0].net, library, cases[0].candidates)
    solo = fused.run(cases[0].net, library, cases[0].candidates)
    assert _solution_signature(one) == _solution_signature(solo)


def test_batched_core_validation(tech):
    with pytest.raises(Exception):
        PowerAwareDp(tech, core="nonsense")
    with pytest.raises(Exception):
        RipConfig(dp_core="nonsense")
    # The reference pruning kernel still forces the staged oracle.
    dp = PowerAwareDp(tech, pruning=PruningConfig(kernel="reference"), core="batched")
    assert dp.core == "staged"


def test_rip_flow_batched_bitwise_equal(cases):
    """The whole hybrid flow is identical under dp_core=batched/fused.

    The batched inserter prepares the population's coarse passes in one
    cross-net batch and runs each net's final DPs in one cross-target batch;
    every record must still be bit-identical to the sequential fused flow.
    """

    def design(core, window_cache):
        rows = []
        rip = Rip(NODE_180NM, RipConfig(dp_core=core), window_cache=window_cache)
        nets = [case.net for case in cases[:2]]
        prepared_nets = rip.prepare_batch(nets)
        for case, prepared in zip(cases[:2], prepared_nets):
            results = rip.run_prepared_batch(prepared, case.targets)
            for target, result in zip(case.targets, results):
                rows.append(
                    (
                        case.net.name,
                        target,
                        result.feasible,
                        result.fallback_used,
                        result.solution.positions,
                        result.solution.widths,
                        result.delay,
                        result.states_generated,
                    )
                )
        return rows

    golden = design("fused", False)
    assert design("batched", False) == golden
    assert design("batched", True) == golden


def test_batched_front_size_history_resets_per_run(cases):
    library = RepeaterLibrary.uniform(40.0, 400.0, 120.0)
    driver = BatchedDpDriver(NODE_180NM)
    problems = [DpProblem(case.net, library, None, case.candidates) for case in cases[:2]]
    driver.run_power(problems)
    first = list(driver.front_size_history)
    driver.run_power(problems)
    assert list(driver.front_size_history) == first
    assert all(size >= 1 for size in first)
