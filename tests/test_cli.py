"""Tests for the command-line interface."""

import json

import pytest

from repro.cli.main import build_parser, main
from repro.net.io import load_net


def test_parser_requires_command():
    parser = build_parser()
    with pytest.raises(SystemExit):
        parser.parse_args([])


def test_parser_rejects_unknown_technology():
    parser = build_parser()
    with pytest.raises(SystemExit):
        parser.parse_args(["--technology", "cmos3", "generate-net", "x.json"])


def test_generate_net_writes_valid_file(tmp_path, capsys):
    path = tmp_path / "net.json"
    assert main(["generate-net", str(path), "--seed", "5"]) == 0
    net = load_net(path)
    assert net.num_segments >= 4
    captured = capsys.readouterr()
    assert "wrote" in captured.out


def test_generate_net_fixed_segments(tmp_path):
    path = tmp_path / "net.json"
    assert main(["generate-net", str(path), "--seed", "5", "--segments", "6"]) == 0
    assert load_net(path).num_segments == 6


def test_insert_rip_runs_and_reports(tmp_path, capsys):
    path = tmp_path / "net.json"
    main(["generate-net", str(path), "--seed", "8"])
    code = main(["insert", str(path), "--target-factor", "1.3"])
    captured = capsys.readouterr()
    assert code == 0
    assert "repeaters" in captured.out
    assert "met" in captured.out


def test_insert_dp_scheme(tmp_path, capsys):
    path = tmp_path / "net.json"
    main(["generate-net", str(path), "--seed", "8"])
    code = main(["insert", str(path), "--target-factor", "1.3", "--scheme", "dp",
                 "--dp-granularity", "40"])
    captured = capsys.readouterr()
    assert code == 0
    assert "DP runtime" in captured.out


def test_insert_with_explicit_target(tmp_path, capsys):
    path = tmp_path / "net.json"
    main(["generate-net", str(path), "--seed", "8"])
    code = main(["insert", str(path), "--target-ns", "5.0"])
    assert code == 0


def test_evaluate_reports_metrics(tmp_path, capsys):
    path = tmp_path / "net.json"
    main(["generate-net", str(path), "--seed", "8"])
    code = main([
        "evaluate", str(path),
        "--repeater", "2000:80",
        "--repeater", "4000:40",
        "--target-ns", "2.0",
    ])
    captured = capsys.readouterr()
    assert code == 0
    assert "total width 120.0u" in captured.out


def test_evaluate_rejects_malformed_repeater(tmp_path, capsys):
    path = tmp_path / "net.json"
    main(["generate-net", str(path), "--seed", "8"])
    assert main(["evaluate", str(path), "--repeater", "oops"]) == 2


def test_experiment_table1_small(tmp_path, capsys):
    csv_path = tmp_path / "t1.csv"
    code = main([
        "experiment", "table1",
        "--nets", "1", "--targets", "3", "--csv", str(csv_path),
    ])
    captured = capsys.readouterr()
    assert code == 0
    assert "dMax" in captured.out
    assert csv_path.exists()
    assert "Net" in csv_path.read_text()


def test_experiment_figure7_small(capsys):
    code = main(["experiment", "figure7", "--nets", "1", "--targets", "3"])
    captured = capsys.readouterr()
    assert code == 0
    assert "Figure 7" in captured.out


def test_sweep_single_technology(tmp_path, capsys):
    json_path = tmp_path / "records.json"
    code = main([
        "sweep", "--nets", "1", "--targets", "2",
        "--methods", "rip", "--json", str(json_path),
    ])
    captured = capsys.readouterr()
    assert code == 0
    assert "designed 2 (net, target, method) records" in captured.out
    payload = json.loads(json_path.read_text())
    assert payload["failures"] == []
    records = payload["records"]
    assert len(records) == 2
    assert all(record["technology"] == "cmos180" for record in records)


def test_sweep_multiple_technologies(tmp_path, capsys):
    json_path = tmp_path / "records.json"
    code = main([
        "sweep", "--nets", "1", "--targets", "2", "--methods", "rip",
        "--tech", "cmos180", "--tech", "cmos90", "--json", str(json_path),
    ])
    captured = capsys.readouterr()
    assert code == 0
    assert "[cmos180]" in captured.out
    assert "[cmos90]" in captured.out
    payload = json.loads(json_path.read_text())
    assert payload["failures"] == []
    records = payload["records"]
    assert sorted({record["technology"] for record in records}) == ["cmos180", "cmos90"]
    assert len(records) == 4


def test_sweep_rejects_unknown_technology():
    parser = build_parser()
    with pytest.raises(SystemExit):
        parser.parse_args(["sweep", "--tech", "cmos3"])


def test_cache_requires_directory(capsys, monkeypatch):
    monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
    assert main(["cache"]) == 2
    assert "cache directory" in capsys.readouterr().err


def test_cache_reports_and_gcs_tiers(tmp_path, capsys):
    cache_dir = tmp_path / "cache"
    assert (
        main(
            [
                "sweep",
                "--nets",
                "2",
                "--targets",
                "3",
                "--cache-dir",
                str(cache_dir),
            ]
        )
        == 0
    )
    capsys.readouterr()
    assert main(["cache", "--cache-dir", str(cache_dir)]) == 0
    out = capsys.readouterr().out
    assert "protocol store" in out
    assert "final-DP frontiers" in out
    assert "REFINE records" in out

    frontiers_before = len(list((cache_dir / "wincache").glob("frontier-*.json")))
    assert frontiers_before > 1
    assert (
        main(
            [
                "cache",
                "--cache-dir",
                str(cache_dir),
                "--gc",
                "--max-frontier-files",
                "1",
                "--max-refine-files",
                "1",
            ]
        )
        == 0
    )
    assert "gc: evicted" in capsys.readouterr().out
    assert len(list((cache_dir / "wincache").glob("frontier-*.json"))) == 1
    assert len(list((cache_dir / "wincache").glob("refine-*.json"))) <= 1


def test_sweep_dp_core_and_analytical_switches(tmp_path, capsys):
    """The oracle switches produce identical records to the defaults."""
    args = ["sweep", "--nets", "1", "--targets", "2", "--json"]
    default_json = tmp_path / "default.json"
    oracle_json = tmp_path / "oracle.json"
    assert main(args + [str(default_json)]) == 0
    assert (
        main(
            args
            + [
                str(oracle_json),
                "--dp-core",
                "staged",
                "--refine-analytical",
                "scalar",
            ]
        )
        == 0
    )
    def rows(path):
        return [
            {key: value for key, value in row.items() if key != "runtime_seconds"}
            for row in json.loads(path.read_text())["records"]
        ]

    assert rows(default_json) == rows(oracle_json)


def test_sweep_exit_codes_reflect_failures(tmp_path, capsys, monkeypatch):
    """A failed net turns the sweep exit code nonzero (unless suppressed)."""
    from repro.engine import design as design_module

    class PoisonedRip(design_module.Rip):
        def prepare(self, net):
            raise ValueError("poisoned by test")

    monkeypatch.setattr(design_module, "Rip", PoisonedRip)
    json_path = tmp_path / "records.json"
    args = [
        "sweep", "--nets", "1", "--targets", "2",
        "--methods", "rip", "--json", str(json_path),
    ]
    assert main(args) == 3
    captured = capsys.readouterr()
    assert "FAILED [crashed]" in captured.out
    assert "exiting 3" in captured.err

    payload = json.loads(json_path.read_text())
    assert payload["records"] == []
    (failure,) = payload["failures"]
    assert failure["failure_kind"] == "crashed"
    assert "poisoned by test" in failure["error"]
    assert failure["technology"] == "cmos180"

    assert main(args + ["--keep-going-exit-zero"]) == 0
    captured = capsys.readouterr()
    assert "FAILED [crashed]" in captured.out
    assert "exiting 3" not in captured.err


def test_serve_parser_accepts_service_flags():
    parser = build_parser()
    args = parser.parse_args(
        [
            "serve", "--port", "0", "--max-tenants", "4",
            "--batch-window-ms", "5", "--max-queue", "16",
        ]
    )
    assert args.command == "serve"
    assert args.port == 0
    assert args.max_tenants == 4
