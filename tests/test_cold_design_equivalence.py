"""End-to-end cold-design equivalence: compiled vs. walked Elmore evaluation.

Runs the full RIP flow (coarse DP -> REFINE -> final DP) over a slice of the
seed population with ``RefineConfig.evaluator`` set to ``"compiled"`` and to
``"walked"`` and asserts the outcomes are **identical** — feasibility
verdicts, refined positions/widths, reported delays and the final discrete
solutions (same shape as ``test_engine_equivalence.py`` for the DP kernels).
Unlike the warm-start tests, which allow solver-tolerance drift, the
compiled evaluator is bit-exact by contract, so everything is compared with
``==``.
"""

from __future__ import annotations

import pytest

from repro.analytical.width_solver import DualBisectionWidthSolver
from repro.core.refine import RefineConfig
from repro.core.rip import Rip, RipConfig
from repro.delay.elmore import unbuffered_net_delay
from repro.engine.cache import ProtocolConfig, ProtocolStore

from tests.conftest import build_uniform_net

POPULATION = ProtocolConfig(num_nets=4, targets_per_net=6, seed=2005)


@pytest.fixture(scope="module")
def population():
    return ProtocolStore().cases(POPULATION)


def _sweep(tech, cases, evaluator):
    config = RipConfig(refine=RefineConfig(evaluator=evaluator))
    rows = []
    for case in cases:
        rip = Rip(tech, config, window_cache=False)
        prepared = rip.prepare(case.net)
        for target in case.targets:
            result = rip.run_prepared(prepared, target)
            rows.append(
                (
                    case.net.name,
                    target,
                    result.feasible,
                    result.refined.feasible,
                    result.refined.solution.positions,
                    result.refined.solution.widths,
                    result.refined.delay,
                    result.refined.lagrange_multiplier,
                    result.refined.width_history,
                    result.solution.positions,
                    result.solution.widths,
                    result.delay,
                    result.total_width,
                    result.fallback_used,
                )
            )
    return rows


def test_cold_design_identical_across_population(tech, population):
    walked = _sweep(tech, population, "walked")
    compiled = _sweep(tech, population, "compiled")
    assert len(walked) == len(compiled)
    for walked_row, compiled_row in zip(walked, compiled):
        assert walked_row == compiled_row


def test_solver_level_solutions_identical(tech):
    net = build_uniform_net(tech, length_um=12000.0, segments=6, name="solver-eq")
    positions = [
        0.25 * net.total_length,
        0.5 * net.total_length,
        0.75 * net.total_length,
    ]
    walked_solver = DualBisectionWidthSolver(tech, evaluator="walked")
    compiled_solver = DualBisectionWidthSolver(tech, evaluator="compiled")
    base = unbuffered_net_delay(net, tech)
    for target in (0.8 * base, 0.95 * base, 50.0 * base, 1.0e-12):
        walked = walked_solver.solve(net, positions, target)
        compiled = compiled_solver.solve(net, positions, target)
        assert compiled.widths == walked.widths
        assert compiled.lagrange_multiplier == walked.lagrange_multiplier
        assert compiled.delay == walked.delay
        assert compiled.total_width == walked.total_width
        assert compiled.feasible == walked.feasible
        assert compiled.iterations == walked.iterations


def test_solver_warm_seed_identical_across_evaluators(tech):
    net = build_uniform_net(tech, length_um=12000.0, segments=6, name="solver-warm-eq")
    positions = [0.3 * net.total_length, 0.7 * net.total_length]
    target = 0.85 * unbuffered_net_delay(net, tech)
    walked_solver = DualBisectionWidthSolver(tech, evaluator="walked")
    compiled_solver = DualBisectionWidthSolver(tech, evaluator="compiled")
    seed = walked_solver.solve(net, positions, target).lagrange_multiplier
    walked = walked_solver.solve(net, positions, target, initial_lambda=seed)
    compiled = compiled_solver.solve(net, positions, target, initial_lambda=seed)
    assert compiled.widths == walked.widths
    assert compiled.delay == walked.delay
    assert compiled.iterations == walked.iterations


def test_evaluator_modes_validated(tech):
    from repro.utils.validation import ValidationError

    with pytest.raises(ValidationError):
        DualBisectionWidthSolver(tech, evaluator="vectorized")
    with pytest.raises(ValidationError):
        RefineConfig(evaluator="fast")
