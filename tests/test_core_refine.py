"""Tests for algorithm REFINE."""

import pytest

from repro.core.refine import Refine, RefineConfig
from repro.core.solution import InsertionSolution
from repro.delay.elmore import buffered_net_delay, unbuffered_net_delay
from repro.net.zones import ForbiddenZone
from repro.utils.units import from_microns
from repro.utils.validation import ValidationError

from tests.conftest import build_mixed_net, build_uniform_net


@pytest.fixture(scope="module")
def long_net(tech):
    return build_uniform_net(tech, length_um=16000.0, segments=8, name="long")


def _initial(net, count, width=160.0):
    positions = [net.total_length * (i + 1) / (count + 1) for i in range(count)]
    return InsertionSolution.from_lists(positions, [width] * count)


def test_refine_meets_timing_and_reduces_width(tech, long_net):
    target = 0.75 * unbuffered_net_delay(long_net, tech)
    initial = _initial(long_net, 3)
    result = Refine(tech).run(long_net, initial, target)
    assert result.feasible
    assert result.total_width < initial.total_width
    recomputed = buffered_net_delay(
        long_net, tech, result.solution.positions, result.solution.widths
    )
    assert recomputed == pytest.approx(result.delay)
    assert recomputed <= target * (1.0 + 1e-6)


def test_refine_keeps_repeater_count(tech, long_net):
    target = 0.8 * unbuffered_net_delay(long_net, tech)
    initial = _initial(long_net, 4)
    result = Refine(tech).run(long_net, initial, target)
    assert result.solution.num_repeaters == 4


def test_refine_width_history_is_recorded_and_improving(tech, long_net):
    target = 0.7 * unbuffered_net_delay(long_net, tech)
    result = Refine(tech).run(long_net, _initial(long_net, 3), target)
    history = result.width_history
    assert len(history) >= 1
    assert min(history) == pytest.approx(result.total_width, rel=1e-9)


def test_refine_moves_repeaters_towards_balance(tech, long_net):
    # Start from badly clustered repeaters; REFINE should spread them and use
    # less total width than sizing the clustered positions alone would need.
    target = 0.85 * unbuffered_net_delay(long_net, tech)
    clustered = InsertionSolution.from_lists(
        [0.3 * long_net.total_length, 0.35 * long_net.total_length], [200.0, 200.0]
    )
    refined = Refine(tech).run(long_net, clustered, target)
    solver_only = Refine(
        tech, config=RefineConfig(max_iterations=1, movement_step=1e-9)
    ).run(long_net, clustered, target)
    assert refined.feasible and solver_only.feasible
    assert refined.total_width <= solver_only.total_width + 1e-9
    assert refined.moves_applied > 0


def test_refine_empty_initial_solution(tech, long_net):
    loose = 2.0 * unbuffered_net_delay(long_net, tech)
    result = Refine(tech).run(long_net, InsertionSolution.empty(), loose)
    assert result.solution.num_repeaters == 0
    assert result.feasible


def test_refine_infeasible_target_reported(tech, long_net):
    result = Refine(tech).run(long_net, _initial(long_net, 1), 1e-12)
    assert not result.feasible


def test_refine_respects_forbidden_zone(tech):
    zone = ForbiddenZone(from_microns(4000.0), from_microns(7000.0))
    net = build_mixed_net(tech, zones=(zone,))
    target = 0.8 * unbuffered_net_delay(net, tech)
    initial = InsertionSolution.from_lists(
        [from_microns(3900.0), from_microns(7100.0)], [160.0, 160.0]
    )
    result = Refine(tech).run(net, initial, target)
    for position in result.solution.positions:
        assert not zone.contains(position)


def test_refine_zone_crossing_can_be_disabled(tech):
    zone = ForbiddenZone(from_microns(4000.0), from_microns(7000.0))
    net = build_mixed_net(tech, zones=(zone,))
    target = 0.85 * unbuffered_net_delay(net, tech)
    initial = InsertionSolution.from_lists([from_microns(3800.0)], [160.0])
    literal = Refine(tech, config=RefineConfig(allow_zone_crossing=False)).run(
        net, initial, target
    )
    extended = Refine(tech, config=RefineConfig(allow_zone_crossing=True)).run(
        net, initial, target
    )
    # The literal paper variant can never end up past the zone.
    assert all(p <= zone.start + 1e-9 for p in literal.solution.positions)
    # The extension is never worse.
    assert extended.total_width <= literal.total_width + 1e-9


def test_refine_config_validation():
    with pytest.raises(ValidationError):
        RefineConfig(movement_step=0.0)
    with pytest.raises(ValidationError):
        RefineConfig(max_iterations=0)


def test_refine_rejects_non_positive_target(tech, long_net):
    with pytest.raises(ValidationError):
        Refine(tech).run(long_net, _initial(long_net, 1), 0.0)


def test_refine_initial_positions_are_legalised(tech):
    zone = ForbiddenZone(from_microns(4000.0), from_microns(7000.0))
    net = build_mixed_net(tech, zones=(zone,))
    target = 0.9 * unbuffered_net_delay(net, tech)
    initial = InsertionSolution.from_lists([zone.center], [120.0])
    result = Refine(tech).run(net, initial, target)
    assert all(not zone.contains(p) for p in result.solution.positions)
