"""Tests for the hybrid RIP flow."""

import pytest

from repro.core.rip import Rip, RipConfig
from repro.delay.elmore import buffered_net_delay
from repro.dp.candidates import uniform_candidates
from repro.dp.powerdp import PowerAwareDp
from repro.dp.vanginneken import DelayOptimalDp
from repro.net.generator import RandomNetGenerator
from repro.tech.library import RepeaterLibrary
from repro.utils.units import from_microns
from repro.utils.validation import ValidationError


@pytest.fixture(scope="module")
def rip(tech):
    return Rip(tech)


@pytest.fixture(scope="module")
def sample_net(tech):
    return RandomNetGenerator(tech, seed=1234).generate()


@pytest.fixture(scope="module")
def tau_min(tech, sample_net):
    return DelayOptimalDp(tech).minimum_delay(
        sample_net,
        RepeaterLibrary.uniform(10.0, 400.0, 10.0),
        uniform_candidates(sample_net, from_microns(50.0)),
    )


def test_rip_meets_timing_across_targets(tech, rip, sample_net, tau_min):
    prepared = rip.prepare(sample_net)
    for factor in (1.05, 1.2, 1.5, 2.0):
        result = rip.run_prepared(prepared, factor * tau_min)
        assert result.feasible, f"RIP violated timing at {factor} x tau_min"
        recomputed = buffered_net_delay(
            sample_net, tech, result.solution.positions, result.solution.widths
        )
        assert recomputed <= factor * tau_min * (1.0 + 1e-9)
        assert recomputed == pytest.approx(result.delay)


def test_rip_solutions_are_legal(tech, rip, sample_net, tau_min):
    result = rip.run(sample_net, 1.3 * tau_min)
    assert result.metrics.legal
    for position in result.solution.positions:
        assert sample_net.is_legal_position(position)


def test_rip_widths_come_from_final_library(rip, sample_net, tau_min):
    result = rip.run(sample_net, 1.25 * tau_min)
    for width in result.solution.widths:
        assert width in result.final_library


def test_rip_looser_target_never_needs_more_power(rip, sample_net, tau_min):
    prepared = rip.prepare(sample_net)
    widths = [
        rip.run_prepared(prepared, factor * tau_min).total_width
        for factor in (1.1, 1.4, 1.8)
    ]
    assert widths[0] >= widths[1] >= widths[2]


def test_rip_not_worse_than_coarse_dp(tech, rip, sample_net, tau_min):
    # The whole point of the hybrid: the final solution should not be more
    # expensive than the coarse-library DP solution it started from.
    prepared = rip.prepare(sample_net)
    for factor in (1.1, 1.3, 1.6, 2.0):
        target = factor * tau_min
        result = rip.run_prepared(prepared, target)
        coarse_point = prepared.coarse_result.best_for_delay(target)
        if coarse_point is None:
            continue
        assert result.total_width <= coarse_point.total_width + 1e-9


def test_rip_competitive_with_fine_dp(tech, rip, sample_net, tau_min):
    # Against the fine-granularity baseline RIP should be within a few
    # percent (the paper reports RIP slightly *better* on average at g=10u).
    dp = PowerAwareDp(tech)
    library = RepeaterLibrary.uniform(10.0, 400.0, 10.0)
    frontier = dp.run(sample_net, library, uniform_candidates(sample_net, from_microns(200.0)))
    prepared = rip.prepare(sample_net)
    for factor in (1.2, 1.5, 1.9):
        target = factor * tau_min
        dp_point = frontier.best_for_delay(target)
        result = rip.run_prepared(prepared, target)
        if dp_point is None:
            assert result.feasible
            continue
        if dp_point.total_width == 0.0:
            assert result.total_width == 0.0
            continue
        assert result.total_width <= 1.35 * dp_point.total_width


def test_rip_reports_runtime_and_intermediate_artifacts(rip, sample_net, tau_min):
    result = rip.run(sample_net, 1.3 * tau_min)
    assert result.runtime_seconds > 0.0
    assert result.refined.solution.num_repeaters == result.refined.solution.num_repeaters
    assert len(result.final_candidates) >= result.solution.num_repeaters
    assert result.coarse_solution is not None


def test_rip_prepare_is_reused(rip, sample_net, tau_min):
    prepared = rip.prepare(sample_net)
    first = rip.run_prepared(prepared, 1.4 * tau_min)
    second = rip.run_prepared(prepared, 1.4 * tau_min)
    assert first.total_width == pytest.approx(second.total_width)
    assert first.solution.positions == second.solution.positions


def test_rip_impossible_target_flagged_infeasible(rip, sample_net):
    result = rip.run(sample_net, 1e-12)
    assert not result.feasible
    assert result.metrics.meets_timing is False


def test_rip_config_validation():
    with pytest.raises(ValidationError):
        RipConfig(coarse_pitch=0.0)
    with pytest.raises(ValidationError):
        RipConfig(location_window=-1)


def test_rip_literal_paper_config_still_works(tech, sample_net, tau_min):
    literal = Rip(
        tech,
        RipConfig(library_neighbor_steps=0),
    )
    result = literal.run(sample_net, 1.4 * tau_min)
    assert result.delay <= 1.4 * tau_min * (1.0 + 1e-9) or not result.feasible


def test_rip_zoned_net_keeps_repeaters_out_of_zone(tech, rip):
    net = RandomNetGenerator(tech, seed=77).generate()
    assert net.forbidden_zones
    tau = DelayOptimalDp(tech).minimum_delay(
        net,
        RepeaterLibrary.uniform(10.0, 400.0, 10.0),
        uniform_candidates(net, from_microns(50.0)),
    )
    result = rip.run(net, 1.2 * tau)
    zone = net.forbidden_zones[0]
    assert all(not zone.contains(p) for p in result.solution.positions)
