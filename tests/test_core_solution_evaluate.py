"""Tests for the solution container and the evaluator."""

import pytest

from repro.core.evaluate import evaluate_solution, solution_delay
from repro.core.solution import InsertionSolution
from repro.delay.elmore import buffered_net_delay
from repro.dp.state import DpSolution
from repro.utils.validation import ValidationError


def test_solution_sorting_in_from_lists():
    solution = InsertionSolution.from_lists([3e-3, 1e-3], [40.0, 80.0])
    assert solution.positions == (1e-3, 3e-3)
    assert solution.widths == (80.0, 40.0)


def test_solution_total_width_and_count():
    solution = InsertionSolution.from_lists([1e-3, 2e-3], [80.0, 40.0])
    assert solution.total_width == pytest.approx(120.0)
    assert solution.num_repeaters == 2


def test_empty_solution():
    solution = InsertionSolution.empty()
    assert solution.num_repeaters == 0
    assert solution.total_width == 0.0
    assert "no repeaters" in solution.describe()


def test_solution_from_dp_round_trip():
    dp = DpSolution.from_lists([1e-3], [64.0], delay=1e-9, total_width=64.0)
    solution = InsertionSolution.from_dp(dp)
    assert solution.positions == dp.positions
    assert solution.widths == dp.widths


def test_solution_with_widths_and_positions():
    solution = InsertionSolution.from_lists([1e-3, 2e-3], [80.0, 40.0])
    rewidthed = solution.with_widths([10.0, 20.0])
    assert rewidthed.positions == solution.positions
    assert rewidthed.widths == (10.0, 20.0)
    moved = solution.with_positions([2.5e-3, 0.5e-3])
    assert moved.positions == (0.5e-3, 2.5e-3)


def test_solution_rejects_unsorted_positions():
    with pytest.raises(ValidationError):
        InsertionSolution(positions=(2e-3, 1e-3), widths=(10.0, 10.0))


def test_solution_rejects_mismatched_lengths():
    with pytest.raises(ValidationError):
        InsertionSolution(positions=(1e-3,), widths=())


def test_solution_rejects_non_positive_width():
    with pytest.raises(ValidationError):
        InsertionSolution(positions=(1e-3,), widths=(0.0,))


def test_solution_legalized_moves_out_of_zone(tech, zoned_net):
    zone = zoned_net.forbidden_zones[0]
    solution = InsertionSolution.from_lists([zone.center], [50.0])
    legal = solution.legalized(zoned_net)
    assert zoned_net.is_legal_position(legal.positions[0])


def test_describe_mentions_widths():
    solution = InsertionSolution.from_lists([1e-3], [42.0])
    assert "42.0u" in solution.describe()


# --------------------------------------------------------------------------- #
# evaluator
# --------------------------------------------------------------------------- #
def test_evaluate_solution_matches_delay_model(tech, mixed_net):
    solution = InsertionSolution.from_lists(
        [0.3 * mixed_net.total_length, 0.7 * mixed_net.total_length], [100.0, 80.0]
    )
    metrics = evaluate_solution(mixed_net, tech, solution)
    expected_delay = buffered_net_delay(mixed_net, tech, solution.positions, solution.widths)
    assert metrics.delay == pytest.approx(expected_delay)
    assert metrics.total_width == pytest.approx(180.0)
    assert metrics.num_repeaters == 2
    assert metrics.repeater_power == pytest.approx(tech.repeater_power(180.0))
    assert metrics.max_stage_delay <= metrics.delay
    assert metrics.legal
    assert metrics.timing_target is None and metrics.meets_timing is None


def test_evaluate_solution_timing_check(tech, mixed_net):
    solution = InsertionSolution.from_lists([0.5 * mixed_net.total_length], [100.0])
    delay = solution_delay(mixed_net, tech, solution)
    met = evaluate_solution(mixed_net, tech, solution, timing_target=2 * delay)
    violated = evaluate_solution(mixed_net, tech, solution, timing_target=0.5 * delay)
    assert met.meets_timing is True
    assert met.slack == pytest.approx(delay)
    assert violated.meets_timing is False
    assert violated.slack < 0.0


def test_evaluate_solution_flags_illegal_position(tech, zoned_net):
    zone = zoned_net.forbidden_zones[0]
    solution = InsertionSolution.from_lists([zone.center], [60.0])
    metrics = evaluate_solution(zoned_net, tech, solution)
    assert not metrics.legal


def test_evaluate_empty_solution(tech, mixed_net):
    metrics = evaluate_solution(mixed_net, tech, InsertionSolution.empty())
    assert metrics.num_repeaters == 0
    assert metrics.total_width == 0.0
    assert metrics.repeater_power == 0.0
    assert metrics.legal
