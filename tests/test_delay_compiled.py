"""Bit-exactness harness for the compiled per-(net, positions) Elmore evaluator.

The contract under test (ISSUE 4): :class:`CompiledElmoreEvaluator` is a
*compilation* of the walked evaluation in :mod:`repro.delay.elmore`, not a
reimplementation — ``stage_delays`` / ``net_delay`` (and the analytical-layer
coefficients ``stage_lumped_rc`` / ``delay_width_gradient``) must be
**bit-for-bit** equal to their walked oracles on seeded-random nets x
positions x widths, including every edge case the REFINE stack can produce:
zero repeaters, duplicate and boundary positions, single-piece nets, min/max
widths.  Invalid positions must raise through both paths — at compile time
for the compiled evaluator (validation is hoisted there), per call for the
walked one.
"""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro.analytical.derivatives import delay_width_gradient, stage_lumped_rc
from repro.delay.compiled import CompiledElmoreEvaluator
from repro.delay.elmore import (
    ElmoreDelayModel,
    buffered_net_delay,
    stage_delays,
)
from repro.net.generator import RandomNetGenerator
from repro.utils.validation import ValidationError

from tests.conftest import build_uniform_net

#: Seeds of the randomized property sweep (each seed = one net, one position
#: set, several width vectors).
SEEDS = tuple(range(12))


def _random_problem(tech, seed, num_repeaters=None):
    net = RandomNetGenerator(tech, seed=seed).generate()
    rng = random.Random(seed)
    n = rng.randint(0, 8) if num_repeaters is None else num_repeaters
    positions = sorted(rng.uniform(0.0, net.total_length) for _ in range(n))
    return net, positions, rng


def _random_widths(tech, rng, count):
    repeater = tech.repeater
    return [rng.uniform(repeater.min_width, repeater.max_width) for _ in range(count)]


def _assert_bit_exact(tech, net, positions, widths):
    evaluator = CompiledElmoreEvaluator(net, tech, positions)
    assert evaluator.stage_delays(widths) == stage_delays(net, tech, positions, widths)
    assert evaluator.net_delay(widths) == buffered_net_delay(
        net, tech, positions, widths
    )


# --------------------------------------------------------------------------- #
# randomized property sweep
# --------------------------------------------------------------------------- #
@pytest.mark.parametrize("seed", SEEDS)
def test_random_nets_positions_widths_bit_exact(tech, seed):
    net, positions, rng = _random_problem(tech, seed)
    evaluator = CompiledElmoreEvaluator(net, tech, positions)
    for _ in range(5):  # one compile serves many width vectors (the hot pattern)
        widths = _random_widths(tech, rng, len(positions))
        assert evaluator.stage_delays(widths) == stage_delays(
            net, tech, positions, widths
        )
        assert evaluator.net_delay(widths) == buffered_net_delay(
            net, tech, positions, widths
        )


@pytest.mark.parametrize("seed", SEEDS)
def test_random_analytical_coefficients_bit_exact(tech, seed):
    net, positions, rng = _random_problem(tech, seed, num_repeaters=None)
    if not positions:
        positions = [0.5 * net.total_length]
    evaluator = CompiledElmoreEvaluator(net, tech, positions)
    compiled_resistance, compiled_capacitance = evaluator.stage_lumped_rc()
    walked_resistance, walked_capacitance = stage_lumped_rc(net, positions)
    assert np.array_equal(compiled_resistance, walked_resistance)
    assert np.array_equal(compiled_capacitance, walked_capacitance)
    widths = np.asarray(_random_widths(tech, rng, len(positions)))
    assert np.array_equal(
        evaluator.delay_width_gradient(widths),
        delay_width_gradient(net, tech, positions, widths),
    )


def test_numpy_widths_match_list_widths(tech, mixed_net):
    positions = [0.3 * mixed_net.total_length, 0.6 * mixed_net.total_length]
    evaluator = CompiledElmoreEvaluator(mixed_net, tech, positions)
    widths = [120.0, 90.0]
    assert evaluator.net_delay(np.asarray(widths)) == evaluator.net_delay(widths)


# --------------------------------------------------------------------------- #
# edge cases
# --------------------------------------------------------------------------- #
def test_zero_repeaters_bit_exact(tech, mixed_net):
    _assert_bit_exact(tech, mixed_net, [], [])


def test_duplicate_positions_bit_exact(tech, mixed_net):
    cut = 0.4 * mixed_net.total_length
    _assert_bit_exact(tech, mixed_net, [cut, cut], [130.0, 70.0])


def test_boundary_positions_bit_exact(tech, mixed_net):
    # Positions exactly on the driver / receiver produce empty stages; both
    # paths must agree on those too (the walked path allows them).
    length = mixed_net.total_length
    _assert_bit_exact(tech, mixed_net, [0.0, length], [10.0, 400.0])


def test_segment_boundary_positions_bit_exact(tech, mixed_net):
    boundaries = mixed_net.boundaries
    positions = [float(boundaries[1]), float(boundaries[3])]
    _assert_bit_exact(tech, mixed_net, positions, [150.0, 150.0])


def test_single_piece_net_bit_exact(tech):
    net = build_uniform_net(tech, segments=1, name="single-piece")
    _assert_bit_exact(tech, net, [0.5 * net.total_length], [200.0])
    _assert_bit_exact(tech, net, [], [])


def test_min_and_max_widths_bit_exact(tech, mixed_net):
    repeater = tech.repeater
    positions = [0.25 * mixed_net.total_length, 0.75 * mixed_net.total_length]
    for width in (repeater.min_width, repeater.max_width):
        _assert_bit_exact(tech, mixed_net, positions, [width, width])


def test_deep_stages_spanning_many_pieces_bit_exact(tech):
    # Stages crossing >= 3 segment boundaries take the padded lane-parallel
    # replay (ISSUE 6 vectorized the former per-stage Python walk); the
    # replay must stay bit-exact in the walked evaluator's accumulation
    # order.
    net = build_uniform_net(tech, segments=9, name="deep")
    _assert_bit_exact(tech, net, [], [])  # a single stage spanning 9 pieces
    third = net.total_length / 3.0
    _assert_bit_exact(tech, net, [third, 2.0 * third], [120.0, 90.0])


def test_mixed_depth_stages_bit_exact(tech, mixed_net):
    # Lanes of very different depth share one padded replay: a hair-thin
    # first stage rides next to a stage spanning almost the whole net, so
    # the shallow lane goes inactive while deep lanes keep emitting pieces.
    length = mixed_net.total_length
    positions = [0.01 * length, 0.02 * length, 0.98 * length]
    _assert_bit_exact(tech, mixed_net, positions, [130.0, 70.0, 250.0])


@pytest.mark.parametrize("seed", SEEDS)
def test_random_sparse_repeaters_deep_stages_bit_exact(tech, seed):
    # Few repeaters on multi-segment random nets: most stages span many
    # pieces, exercising the deep-stage holdout across random geometries.
    net, _, rng = _random_problem(tech, seed, num_repeaters=0)
    n = seed % 3
    positions = sorted(rng.uniform(0.0, net.total_length) for _ in range(n))
    for _ in range(3):
        widths = _random_widths(tech, rng, len(positions))
        _assert_bit_exact(tech, net, positions, widths)


def test_facade_compile_factory_matches_walked_model(tech, mixed_net):
    model = ElmoreDelayModel(tech)
    positions = [0.5 * mixed_net.total_length]
    evaluator = model.compile(mixed_net, positions)
    widths = [100.0]
    assert evaluator.stage_delays(widths) == model.stage_delays(
        mixed_net, positions, widths
    )
    assert evaluator.net_delay(widths) == model.net_delay(mixed_net, positions, widths)
    assert evaluator.num_repeaters == 1
    assert evaluator.num_stages == 2
    assert evaluator.net is mixed_net
    assert evaluator.technology is tech


# --------------------------------------------------------------------------- #
# invalid inputs raise through both paths
# --------------------------------------------------------------------------- #
def test_unsorted_positions_raise_through_both_paths(tech, mixed_net):
    positions = [0.6 * mixed_net.total_length, 0.2 * mixed_net.total_length]
    with pytest.raises(ValidationError):
        stage_delays(mixed_net, tech, positions, [80.0, 80.0])
    with pytest.raises(ValidationError):
        CompiledElmoreEvaluator(mixed_net, tech, positions)


def test_out_of_range_positions_raise_through_both_paths(tech, mixed_net):
    for positions in ([-1.0e-6], [2.0 * mixed_net.total_length]):
        with pytest.raises(ValidationError):
            stage_delays(mixed_net, tech, positions, [80.0])
        with pytest.raises(ValidationError):
            CompiledElmoreEvaluator(mixed_net, tech, positions)


def test_mismatched_widths_raise_through_both_paths(tech, mixed_net):
    positions = [0.5 * mixed_net.total_length]
    evaluator = CompiledElmoreEvaluator(mixed_net, tech, positions)
    with pytest.raises(ValidationError):
        stage_delays(mixed_net, tech, positions, [])
    with pytest.raises(ValidationError):
        evaluator.stage_delays([])
    with pytest.raises(ValidationError):
        evaluator.delay_width_gradient([80.0, 80.0])


def test_non_positive_widths_raise_through_both_paths(tech, mixed_net):
    positions = [0.5 * mixed_net.total_length]
    evaluator = CompiledElmoreEvaluator(mixed_net, tech, positions)
    for bad in ([0.0], [-5.0], [float("nan")]):
        with pytest.raises(ValidationError):
            buffered_net_delay(mixed_net, tech, positions, bad)
        with pytest.raises(ValidationError):
            evaluator.net_delay(bad)
