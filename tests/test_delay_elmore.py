"""Tests for the buffered-net Elmore delay (Eq. 2)."""

import pytest

from repro.delay.elmore import (
    ElmoreDelayModel,
    buffered_net_delay,
    stage_delays,
    unbuffered_net_delay,
)
from repro.utils.validation import ValidationError


def test_unbuffered_delay_closed_form(tech, uniform_net):
    # For a uniform wire: tau = Rs*Cp + Rs/wd*(C + Co*wr) + R*Co*wr + R*C/2.
    repeater = tech.repeater
    resistance = uniform_net.total_resistance
    capacitance = uniform_net.total_capacitance
    load = repeater.input_capacitance(uniform_net.receiver_width)
    expected = (
        repeater.intrinsic_delay
        + repeater.drive_resistance(uniform_net.driver_width) * (capacitance + load)
        + resistance * load
        + 0.5 * resistance * capacitance
    )
    assert unbuffered_net_delay(uniform_net, tech) == pytest.approx(expected)


def test_stage_delays_sum_to_total(tech, mixed_net):
    positions = [0.3 * mixed_net.total_length, 0.7 * mixed_net.total_length]
    widths = [120.0, 90.0]
    per_stage = stage_delays(mixed_net, tech, positions, widths)
    assert len(per_stage) == 3
    assert sum(per_stage) == pytest.approx(
        buffered_net_delay(mixed_net, tech, positions, widths)
    )


def test_no_repeaters_equals_unbuffered(tech, mixed_net):
    assert buffered_net_delay(mixed_net, tech, [], []) == pytest.approx(
        unbuffered_net_delay(mixed_net, tech)
    )


def test_well_placed_repeater_reduces_delay(tech, uniform_net):
    # A long uniform net benefits from one optimally sized repeater at midpoint.
    buffered = buffered_net_delay(
        uniform_net, tech, [0.5 * uniform_net.total_length], [150.0]
    )
    assert buffered < unbuffered_net_delay(uniform_net, tech)


def test_delay_positive_and_finite(tech, mixed_net):
    delay = buffered_net_delay(mixed_net, tech, [0.4 * mixed_net.total_length], [80.0])
    assert delay > 0.0


def test_mismatched_lengths_rejected(tech, mixed_net):
    with pytest.raises(ValidationError):
        buffered_net_delay(mixed_net, tech, [1e-3], [])


def test_unsorted_positions_rejected(tech, mixed_net):
    with pytest.raises(ValidationError):
        buffered_net_delay(mixed_net, tech, [5e-3, 1e-3], [80.0, 80.0])


def test_position_outside_net_rejected(tech, mixed_net):
    with pytest.raises(ValidationError):
        buffered_net_delay(mixed_net, tech, [mixed_net.total_length * 2], [80.0])


def test_zero_width_rejected(tech, mixed_net):
    with pytest.raises(ValidationError):
        buffered_net_delay(mixed_net, tech, [1e-3], [0.0])


def test_delay_model_facade_matches_functions(tech, mixed_net):
    model = ElmoreDelayModel(tech)
    positions, widths = [0.5 * mixed_net.total_length], [100.0]
    assert model.net_delay(mixed_net, positions, widths) == pytest.approx(
        buffered_net_delay(mixed_net, tech, positions, widths)
    )
    assert model.unbuffered_delay(mixed_net) == pytest.approx(
        unbuffered_net_delay(mixed_net, tech)
    )
    assert model.stage_delays(mixed_net, positions, widths) == pytest.approx(
        stage_delays(mixed_net, tech, positions, widths)
    )
    assert model.technology is tech


def test_splitting_stage_at_boundary_preserves_total(tech, mixed_net):
    """Inserting a 'virtual' cut (evaluating with a repeater exactly matching
    the downstream load) is not expected to preserve delay, but evaluating the
    same solution twice must be deterministic."""
    positions, widths = [0.25 * mixed_net.total_length], [64.0]
    first = buffered_net_delay(mixed_net, tech, positions, widths)
    second = buffered_net_delay(mixed_net, tech, positions, widths)
    assert first == second
