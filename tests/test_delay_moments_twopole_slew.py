"""Tests for moment computation, two-pole/D2M metrics and slew estimates."""

import math

import pytest

from repro.delay.elmore import unbuffered_net_delay
from repro.delay.moments import discretize_net, ladder_moments, net_transfer_moments
from repro.delay.slew import LN9, elmore_slew, stage_output_slew
from repro.delay.twopole import d2m_delay, two_pole_delay
from repro.utils.validation import ValidationError


def test_single_rc_moments_exact():
    # One resistor R into one capacitor C: m1 = -RC, m2 = (RC)^2.
    r, c = 1000.0, 1e-12
    m1, m2 = ladder_moments([r], [c], order=2)
    assert m1 == pytest.approx(-r * c)
    assert m2 == pytest.approx((r * c) ** 2)


def test_two_stage_ladder_m1_is_minus_elmore():
    resistances = [100.0, 200.0]
    capacitances = [1e-12, 2e-12]
    m1 = ladder_moments(resistances, capacitances, order=1)[0]
    elmore = 100.0 * (1e-12 + 2e-12) + 200.0 * 2e-12
    assert m1 == pytest.approx(-elmore)


def test_empty_ladder_gives_zero_moments():
    assert ladder_moments([], [], order=3) == [0.0, 0.0, 0.0]


def test_mismatched_lists_rejected():
    with pytest.raises(ValidationError):
        ladder_moments([1.0], [], order=1)


def test_net_moments_m1_tracks_elmore(tech, mixed_net):
    # The first moment of the discretised net approaches (minus) the exact
    # pi-model Elmore delay as the discretisation refines.
    moments = net_transfer_moments(mixed_net, tech, order=1, lumps_per_segment=50)
    exact = unbuffered_net_delay(mixed_net, tech)
    assert -moments[0] == pytest.approx(exact, rel=0.02)


def test_discretize_net_totals(tech, mixed_net):
    resistances, capacitances = discretize_net(mixed_net, tech, lumps_per_segment=7)
    wire_resistance = sum(resistances[1:])  # first entry is the driver
    assert wire_resistance == pytest.approx(mixed_net.total_resistance)
    receiver_cap = tech.repeater.input_capacitance(mixed_net.receiver_width)
    driver_cap = tech.repeater.output_capacitance(mixed_net.driver_width)
    assert sum(capacitances) == pytest.approx(
        mixed_net.total_capacitance + receiver_cap + driver_cap
    )


def test_d2m_below_elmore_for_rc_line():
    # For a distributed line D2M is known to be smaller than the Elmore delay.
    resistances = [10.0] * 50
    capacitances = [1e-13] * 50
    m1, m2 = ladder_moments(resistances, capacitances, order=2)
    assert d2m_delay(m1, m2) < -m1


def test_d2m_rejects_positive_m1():
    with pytest.raises(ValidationError):
        d2m_delay(1.0, 1.0)


def test_two_pole_single_rc_matches_log2():
    # A single-pole circuit: the two-pole fit degenerates and the 50% delay
    # is ln(2) * RC.
    r, c = 1000.0, 1e-12
    m1, m2 = ladder_moments([r], [c], order=2)
    assert two_pole_delay(m1, m2) == pytest.approx(math.log(2.0) * r * c, rel=1e-6)


def test_two_pole_delay_monotone_in_threshold():
    resistances = [10.0] * 20
    capacitances = [1e-13] * 20
    m1, m2 = ladder_moments(resistances, capacitances, order=2)
    assert two_pole_delay(m1, m2, threshold=0.9) > two_pole_delay(m1, m2, threshold=0.5)


def test_two_pole_between_zero_and_elmore():
    resistances = [5.0, 15.0, 25.0]
    capacitances = [2e-13, 1e-13, 3e-13]
    m1, m2 = ladder_moments(resistances, capacitances, order=2)
    delay = two_pole_delay(m1, m2)
    assert 0.0 < delay < -m1


def test_elmore_slew_constant():
    assert elmore_slew(1e-10) == pytest.approx(LN9 * 1e-10)


def test_slew_non_negative_input():
    with pytest.raises(ValidationError):
        elmore_slew(-1.0)


def test_stage_output_slew_scales_with_wire(tech):
    repeater = tech.repeater
    short = stage_output_slew(repeater, 100.0, [(4.0e4, 2.0e-10, 1e-3)], 1e-14)
    long = stage_output_slew(repeater, 100.0, [(4.0e4, 2.0e-10, 4e-3)], 1e-14)
    assert long > short
