"""Tests for the single-stage Elmore delay (Eq. 1)."""

import pytest

from repro.delay.stage import stage_delay, stage_delay_breakdown, wire_elmore_delay
from repro.tech.repeater import RepeaterParameters


@pytest.fixture
def repeater():
    return RepeaterParameters(9000.0, 1.8e-15, 1.6e-15)


def test_wire_elmore_single_lump():
    # One piece: R * (C/2 + load)
    pieces = [(1.0e5, 2.0e-10, 1e-3)]
    resistance, capacitance = 1.0e5 * 1e-3, 2.0e-10 * 1e-3
    load = 5e-15
    assert wire_elmore_delay(pieces, load) == pytest.approx(
        resistance * (0.5 * capacitance + load)
    )


def test_wire_elmore_zero_for_empty_wire():
    assert wire_elmore_delay([], 1e-15) == 0.0


def test_wire_elmore_splitting_a_piece_changes_nothing():
    whole = [(1.0e5, 2.0e-10, 2e-3)]
    halves = [(1.0e5, 2.0e-10, 1e-3), (1.0e5, 2.0e-10, 1e-3)]
    load = 10e-15
    # Both are discretisations of the same uniform wire; the pi-ladder Elmore
    # value is identical because the formula integrates r(x) * C_downstream(x).
    assert wire_elmore_delay(halves, load) == pytest.approx(wire_elmore_delay(whole, load))


def test_wire_elmore_increases_with_load():
    pieces = [(1.0e5, 2.0e-10, 1e-3)]
    assert wire_elmore_delay(pieces, 2e-15) > wire_elmore_delay(pieces, 1e-15)


def test_stage_breakdown_matches_equation_terms(repeater):
    pieces = [(4.0e4, 2.0e-10, 2e-3), (3.0e4, 2.1e-10, 1e-3)]
    width = 100.0
    load = repeater.input_capacitance(80.0)
    breakdown = stage_delay_breakdown(repeater, width, pieces, load)

    wire_cap = sum(c * l for _, c, l in pieces)
    wire_res = sum(r * l for r, _, l in pieces)
    assert breakdown.intrinsic == pytest.approx(repeater.intrinsic_delay)
    assert breakdown.drive == pytest.approx((9000.0 / width) * (wire_cap + load))
    assert breakdown.wire_to_load == pytest.approx(wire_res * load)
    assert breakdown.total == pytest.approx(stage_delay(repeater, width, pieces, load))


def test_stage_delay_without_intrinsic(repeater):
    pieces = [(4.0e4, 2.0e-10, 1e-3)]
    with_i = stage_delay(repeater, 50.0, pieces, 1e-15, include_intrinsic=True)
    without_i = stage_delay(repeater, 50.0, pieces, 1e-15, include_intrinsic=False)
    assert with_i - without_i == pytest.approx(repeater.intrinsic_delay)


def test_stage_delay_decreases_with_driver_width(repeater):
    pieces = [(4.0e4, 2.0e-10, 2e-3)]
    load = 50e-15
    delays = [stage_delay(repeater, w, pieces, load) for w in (10.0, 50.0, 200.0)]
    assert delays[0] > delays[1] > delays[2]


def test_stage_delay_increases_with_load(repeater):
    pieces = [(4.0e4, 2.0e-10, 2e-3)]
    assert stage_delay(repeater, 50.0, pieces, 100e-15) > stage_delay(
        repeater, 50.0, pieces, 10e-15
    )


def test_stage_delay_back_to_back_repeaters(repeater):
    # No wire at all: delay = Rs*Cp + Rs/w * Cload.
    load = repeater.input_capacitance(60.0)
    expected = repeater.intrinsic_delay + repeater.drive_resistance(40.0) * load
    assert stage_delay(repeater, 40.0, [], load) == pytest.approx(expected)
