"""Tests for candidate-location generation and DP dominance pruning."""

import numpy as np
import pytest

from repro.dp.candidates import merge_candidates, uniform_candidates, window_candidates
from repro.dp.pruning import PruningConfig, prune_states, prune_two_dimensional
from repro.utils.units import from_microns
from repro.utils.validation import ValidationError


def test_uniform_candidates_pitch_and_bounds(mixed_net):
    pitch = from_microns(200.0)
    candidates = uniform_candidates(mixed_net, pitch)
    assert candidates[0] == pytest.approx(pitch)
    assert candidates[-1] < mixed_net.total_length
    diffs = np.diff(candidates)
    assert np.allclose(diffs, pitch)


def test_uniform_candidates_skip_zones(zoned_net):
    zone = zoned_net.forbidden_zones[0]
    candidates = uniform_candidates(zoned_net, from_microns(200.0))
    assert all(not zone.contains(c) for c in candidates)


def test_window_candidates_centered_and_legal(zoned_net):
    centers = [0.25 * zoned_net.total_length]
    candidates = window_candidates(zoned_net, centers, window=5, pitch=from_microns(50.0))
    assert len(candidates) <= 11
    assert all(zoned_net.is_legal_position(c) for c in candidates)
    assert any(abs(c - centers[0]) < 1e-12 for c in candidates)


def test_window_candidates_merge_overlapping_windows(mixed_net):
    centers = [1e-3, 1e-3 + from_microns(50.0)]
    candidates = window_candidates(mixed_net, centers, window=2, pitch=from_microns(50.0))
    assert len(candidates) == len(set(round(c, 12) for c in candidates))
    assert candidates == sorted(candidates)


def test_window_candidates_exclude_centers_option(mixed_net):
    center = 2e-3
    candidates = window_candidates(
        mixed_net, [center], window=1, pitch=from_microns(50.0), include_centers=False
    )
    assert all(abs(c - center) > 1e-12 for c in candidates)


def test_window_candidates_clipped_by_forbidden_zone(zoned_net):
    # A center just downstream of the zone: the window reaches back into the
    # zone and every in-zone position must be clipped, keeping the rest.
    zone = zoned_net.forbidden_zones[0]
    pitch = from_microns(50.0)
    center = zone.end + 2 * pitch
    candidates = window_candidates(zoned_net, [center], window=10, pitch=pitch)
    assert candidates  # the downstream half of the window survives
    assert all(not zone.contains(c) for c in candidates)
    assert all(zoned_net.is_legal_position(c) for c in candidates)
    # Positions the zone would have claimed are really gone.
    assert min(candidates) >= zone.end


def test_window_candidates_duplicate_centers_merge_without_duplicates(mixed_net):
    pitch = from_microns(50.0)
    # Identical and fully-overlapping centers: the union must contain each
    # grid position exactly once and stay sorted.
    centers = [2e-3, 2e-3, 2e-3 + pitch]
    candidates = window_candidates(mixed_net, centers, window=3, pitch=pitch)
    assert candidates == sorted(candidates)
    assert all(b - a > 1e-12 for a, b in zip(candidates, candidates[1:]))
    single = window_candidates(mixed_net, [2e-3], window=3, pitch=pitch)
    assert set(round(c, 12) for c in single) <= set(round(c, 12) for c in candidates)


def test_window_candidates_collapse_to_zero_legal_positions(tech):
    from repro.net.zones import ForbiddenZone
    from tests.conftest import build_mixed_net

    # Zone [3.5mm, 6mm]; a window centered mid-zone with total reach
    # 2 * 2 * 50um = 200um cannot escape it: no legal position remains.
    net = build_mixed_net(
        tech, zones=(ForbiddenZone(from_microns(3500.0), from_microns(6000.0)),)
    )
    candidates = window_candidates(
        net, [from_microns(4750.0)], window=2, pitch=from_microns(50.0)
    )
    assert candidates == []


def test_merge_candidates_dedups_within_tolerance():
    merged = merge_candidates([1.0, 1.0 + 1e-12, 2.0], tolerance=1e-9)
    assert merged == [1.0, 2.0]


def test_uniform_candidates_rejects_bad_pitch(mixed_net):
    with pytest.raises(ValidationError):
        uniform_candidates(mixed_net, 0.0)


# --------------------------------------------------------------------------- #
# pruning
# --------------------------------------------------------------------------- #
def _as_arrays(points):
    caps = np.array([p[0] for p in points])
    delays = np.array([p[1] for p in points])
    widths = np.array([p[2] for p in points])
    return caps, delays, widths


def test_prune_states_removes_dominated():
    points = [(1.0, 1.0, 1.0), (2.0, 2.0, 2.0), (0.5, 3.0, 0.5)]
    caps, delays, widths = _as_arrays(points)
    kept = prune_states(caps, delays, widths, PruningConfig())
    kept_points = {tuple(points[i]) for i in kept}
    assert (2.0, 2.0, 2.0) not in kept_points
    assert (1.0, 1.0, 1.0) in kept_points
    assert (0.5, 3.0, 0.5) in kept_points


def test_prune_states_full_not_weaker_than_bucket():
    rng = np.random.default_rng(0)
    caps = rng.uniform(1e-15, 1e-12, 300)
    delays = rng.uniform(1e-12, 1e-9, 300)
    widths = rng.choice([10.0, 20.0, 30.0, 40.0], 300).astype(float)
    full = prune_states(caps, delays, widths, PruningConfig(strategy="full"))
    bucket = prune_states(caps, delays, widths, PruningConfig(strategy="bucket"))
    assert len(full) <= len(bucket)
    # every full survivor must also survive bucket pruning
    assert set(full.tolist()) <= set(bucket.tolist())


def test_prune_states_never_removes_unique_minima():
    rng = np.random.default_rng(1)
    caps = rng.uniform(1e-15, 1e-12, 200)
    delays = rng.uniform(1e-12, 1e-9, 200)
    widths = rng.uniform(10.0, 400.0, 200)
    kept = set(prune_states(caps, delays, widths, PruningConfig()).tolist())
    assert int(np.argmin(delays)) in kept
    assert int(np.argmin(widths)) in kept or any(
        widths[k] <= widths[int(np.argmin(widths))] + 1e-9 for k in kept
    )


def test_prune_states_empty_input():
    empty = np.empty(0)
    assert len(prune_states(empty, empty, empty, PruningConfig())) == 0


def test_prune_states_identical_states_collapse():
    caps = np.array([1.0, 1.0, 1.0])
    delays = np.array([2.0, 2.0, 2.0])
    widths = np.array([3.0, 3.0, 3.0])
    assert len(prune_states(caps, delays, widths, PruningConfig())) == 1


def test_pruning_config_rejects_unknown_strategy():
    with pytest.raises(ValidationError):
        PruningConfig(strategy="magic")


def test_prune_two_dimensional_is_pareto():
    caps = np.array([1.0, 2.0, 3.0, 1.5])
    delays = np.array([4.0, 3.0, 1.0, 5.0])
    kept = prune_two_dimensional(caps, delays)
    kept_set = {(caps[i], delays[i]) for i in kept}
    assert (1.5, 5.0) not in kept_set  # dominated by (1.0, 4.0)
    assert (1.0, 4.0) in kept_set
    assert (3.0, 1.0) in kept_set
