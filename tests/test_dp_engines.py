"""Tests for the DP buffering engines (frontier, power-aware DP, van Ginneken).

Includes a brute-force cross-check on small instances: with few candidate
locations and a tiny library the exhaustive enumeration of every repeater
assignment is feasible, and the DP must match its optimum exactly.
"""

from itertools import product

import pytest

from repro.delay.elmore import buffered_net_delay, unbuffered_net_delay
from repro.dp.candidates import uniform_candidates
from repro.dp.frontier import DelayWidthFrontier, FrontierPoint
from repro.dp.powerdp import PowerAwareDp
from repro.dp.pruning import PruningConfig
from repro.dp.state import BufferAssignment, DpSolution
from repro.dp.vanginneken import DelayOptimalDp
from repro.tech.library import RepeaterLibrary
from repro.utils.units import from_microns

from tests.conftest import build_mixed_net, build_uniform_net


# --------------------------------------------------------------------------- #
# DpSolution / frontier containers
# --------------------------------------------------------------------------- #
def test_dp_solution_accessors():
    solution = DpSolution.from_lists([1e-3, 2e-3], [80.0, 40.0], delay=1e-9, total_width=120.0)
    assert solution.positions == (1e-3, 2e-3)
    assert solution.widths == (80.0, 40.0)
    assert solution.num_repeaters == 2
    assert solution.assignments[0] == BufferAssignment(1e-3, 80.0)


def _point(delay, width):
    return FrontierPoint(
        delay=delay,
        total_width=width,
        solution=DpSolution.from_lists([], [], delay=delay, total_width=width),
    )


def test_frontier_prunes_dominated_points():
    frontier = DelayWidthFrontier([_point(1.0, 100.0), _point(2.0, 150.0), _point(3.0, 50.0)])
    assert len(frontier) == 2  # (2.0, 150) is dominated by (1.0, 100)
    assert frontier.min_delay() == 1.0
    assert frontier.min_width_solution().total_width == 50.0


def test_frontier_best_for_delay_lookup():
    frontier = DelayWidthFrontier([_point(1.0, 100.0), _point(2.0, 60.0), _point(3.0, 20.0)])
    assert frontier.best_for_delay(0.5) is None
    assert frontier.best_for_delay(1.5).total_width == 100.0
    assert frontier.best_for_delay(2.0).total_width == 60.0
    assert frontier.best_for_delay(10.0).total_width == 20.0


def test_frontier_empty():
    frontier = DelayWidthFrontier([])
    assert frontier.is_empty()
    with pytest.raises(ValueError):
        frontier.min_delay()


# --------------------------------------------------------------------------- #
# power-aware DP
# --------------------------------------------------------------------------- #
@pytest.fixture(scope="module")
def small_net(tech):
    return build_mixed_net(tech)


def test_power_dp_frontier_is_consistent_with_evaluator(tech, small_net):
    library = RepeaterLibrary.uniform(40.0, 200.0, 40.0)
    candidates = uniform_candidates(small_net, from_microns(500.0))
    result = PowerAwareDp(tech).run(small_net, library, candidates)
    assert not result.frontier.is_empty()
    for point in result.frontier:
        recomputed = buffered_net_delay(
            small_net, tech, point.solution.positions, point.solution.widths
        )
        assert recomputed == pytest.approx(point.delay, rel=1e-9)
        assert sum(point.solution.widths) == pytest.approx(point.total_width)
        assert all(w in library for w in point.solution.widths)
        assert all(small_net.is_legal_position(p) for p in point.solution.positions)


def test_power_dp_frontier_contains_unbuffered_solution(tech, small_net):
    library = RepeaterLibrary.uniform(40.0, 200.0, 40.0)
    candidates = uniform_candidates(small_net, from_microns(500.0))
    result = PowerAwareDp(tech).run(small_net, library, candidates)
    slowest = result.frontier.min_width_solution()
    assert slowest.total_width == 0.0
    assert slowest.delay == pytest.approx(unbuffered_net_delay(small_net, tech))


def test_power_dp_frontier_monotone(tech, small_net):
    library = RepeaterLibrary.uniform(40.0, 400.0, 40.0)
    candidates = uniform_candidates(small_net, from_microns(400.0))
    points = PowerAwareDp(tech).run(small_net, library, candidates).frontier.points
    delays = [p.delay for p in points]
    widths = [p.total_width for p in points]
    assert delays == sorted(delays)
    assert widths == sorted(widths, reverse=True)


def test_power_dp_respects_forbidden_zone(tech, zoned_net):
    library = RepeaterLibrary.uniform(40.0, 200.0, 80.0)
    candidates = uniform_candidates(zoned_net, from_microns(200.0))
    result = PowerAwareDp(tech).run(zoned_net, library, candidates)
    zone = zoned_net.forbidden_zones[0]
    for point in result.frontier:
        assert all(not zone.contains(p) for p in point.solution.positions)


def test_power_dp_illegal_candidates_are_dropped(tech, zoned_net):
    zone = zoned_net.forbidden_zones[0]
    library = RepeaterLibrary((80.0,))
    result = PowerAwareDp(tech).run(zoned_net, library, [zone.center, -1.0, 2 * zoned_net.total_length])
    # All provided candidates are illegal, so only the unbuffered solution exists.
    assert len(result.frontier) == 1
    assert result.frontier.points[0].total_width == 0.0


def test_power_dp_bucket_and_full_pruning_agree_on_optimum(tech, small_net):
    library = RepeaterLibrary.uniform(40.0, 200.0, 40.0)
    candidates = uniform_candidates(small_net, from_microns(500.0))
    full = PowerAwareDp(tech, pruning=PruningConfig(strategy="full")).run(
        small_net, library, candidates
    )
    bucket = PowerAwareDp(tech, pruning=PruningConfig(strategy="bucket")).run(
        small_net, library, candidates
    )
    target = 1.3 * full.min_delay()
    assert full.best_for_delay(target).total_width == pytest.approx(
        bucket.best_for_delay(target).total_width
    )


def test_power_dp_statistics_populated(tech, small_net):
    library = RepeaterLibrary.uniform(80.0, 160.0, 80.0)
    candidates = uniform_candidates(small_net, from_microns(1000.0))
    result = PowerAwareDp(tech).run(small_net, library, candidates)
    stats = result.statistics
    assert stats.num_candidates == len(candidates)
    assert stats.library_size == 2
    assert stats.states_generated > 0
    assert stats.max_front_size >= 1
    assert stats.runtime_seconds >= 0.0


# --------------------------------------------------------------------------- #
# brute force cross-check
# --------------------------------------------------------------------------- #
def _brute_force_best(net, tech, library, candidates, target):
    """Exhaustive enumeration of all assignments over the candidate sites."""
    best_width = None
    options = [None, *library.widths]
    for assignment in product(options, repeat=len(candidates)):
        positions = [c for c, w in zip(candidates, assignment) if w is not None]
        widths = [w for w in assignment if w is not None]
        delay = buffered_net_delay(net, tech, positions, widths)
        if delay <= target:
            width = sum(widths)
            if best_width is None or width < best_width:
                best_width = width
    return best_width


def test_power_dp_matches_brute_force(tech):
    net = build_uniform_net(tech, length_um=6000.0, segments=3)
    library = RepeaterLibrary((60.0, 180.0))
    candidates = uniform_candidates(net, from_microns(1500.0))
    assert len(candidates) <= 4
    result = PowerAwareDp(tech).run(net, library, candidates)

    for factor in (1.05, 1.2, 1.5, 2.0):
        target = factor * result.min_delay()
        expected = _brute_force_best(net, tech, library, candidates, target)
        point = result.best_for_delay(target)
        got = None if point is None else point.total_width
        assert got == pytest.approx(expected)


def test_delay_optimal_matches_brute_force_min_delay(tech):
    net = build_uniform_net(tech, length_um=6000.0, segments=3)
    library = RepeaterLibrary((60.0, 180.0))
    candidates = uniform_candidates(net, from_microns(1500.0))
    best = None
    options = [None, *library.widths]
    for assignment in product(options, repeat=len(candidates)):
        positions = [c for c, w in zip(candidates, assignment) if w is not None]
        widths = [w for w in assignment if w is not None]
        delay = buffered_net_delay(net, tech, positions, widths)
        best = delay if best is None else min(best, delay)
    solution = DelayOptimalDp(tech).run(net, library, candidates)
    assert solution.delay == pytest.approx(best)


# --------------------------------------------------------------------------- #
# van Ginneken delay-optimal DP
# --------------------------------------------------------------------------- #
def test_delay_optimal_beats_unbuffered_on_long_net(tech, small_net):
    library = RepeaterLibrary.uniform(40.0, 400.0, 40.0)
    candidates = uniform_candidates(small_net, from_microns(200.0))
    solution = DelayOptimalDp(tech).run(small_net, library, candidates)
    assert solution.delay < unbuffered_net_delay(small_net, tech)
    assert solution.num_repeaters >= 1


def test_delay_optimal_solution_is_consistent(tech, small_net):
    library = RepeaterLibrary.uniform(40.0, 400.0, 80.0)
    candidates = uniform_candidates(small_net, from_microns(400.0))
    solution = DelayOptimalDp(tech).run(small_net, library, candidates)
    recomputed = buffered_net_delay(small_net, tech, solution.positions, solution.widths)
    assert recomputed == pytest.approx(solution.delay, rel=1e-9)
    assert solution.total_width == pytest.approx(sum(solution.widths))


def test_delay_optimal_minimum_delay_below_power_dp_points(tech, small_net):
    library = RepeaterLibrary.uniform(40.0, 400.0, 40.0)
    candidates = uniform_candidates(small_net, from_microns(400.0))
    tau_min = DelayOptimalDp(tech).minimum_delay(small_net, library, candidates)
    frontier = PowerAwareDp(tech).run(small_net, library, candidates).frontier
    assert tau_min == pytest.approx(frontier.min_delay(), rel=1e-9)


def test_denser_candidates_never_hurt_min_delay(tech, small_net):
    library = RepeaterLibrary.uniform(80.0, 400.0, 80.0)
    coarse = DelayOptimalDp(tech).minimum_delay(
        small_net, library, uniform_candidates(small_net, from_microns(800.0))
    )
    dense = DelayOptimalDp(tech).minimum_delay(
        small_net, library, uniform_candidates(small_net, from_microns(200.0))
    )
    assert dense <= coarse + 1e-15


def test_richer_library_never_hurts_min_delay(tech, small_net):
    candidates = uniform_candidates(small_net, from_microns(400.0))
    poor = DelayOptimalDp(tech).minimum_delay(small_net, RepeaterLibrary((80.0,)), candidates)
    rich = DelayOptimalDp(tech).minimum_delay(
        small_net, RepeaterLibrary.uniform(40.0, 400.0, 40.0), candidates
    )
    assert rich <= poor + 1e-15
