"""Tests for :class:`repro.engine.compiled.CompiledNet`.

The compiled traversal must be *bit-for-bit* identical to the legacy
``traverse_wire`` loop — the DP golden tests rely on it — and the affine
fast path must agree to floating-point re-association accuracy.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.dp.candidates import merge_candidates, uniform_candidates
from repro.dp.powerdp import traverse_wire
from repro.engine.compiled import CompiledNet
from repro.utils.units import from_microns

from tests.conftest import build_mixed_net, build_uniform_net


@pytest.fixture(params=["uniform", "mixed", "zoned"])
def any_net(request, tech, zoned_net):
    if request.param == "uniform":
        return build_uniform_net(tech)
    if request.param == "mixed":
        return build_mixed_net(tech)
    return zoned_net


def test_positions_are_legalised_and_merged(zoned_net):
    raw = [
        -1.0,  # outside
        0.0,  # driver
        from_microns(1000.0),
        from_microns(1000.0) + 1e-10,  # near-duplicate, merged
        zoned_net.forbidden_zones[0].center,  # illegal
        from_microns(7000.0),
        zoned_net.total_length,  # receiver
    ]
    compiled = CompiledNet(zoned_net, raw)
    expected = merge_candidates(p for p in raw if zoned_net.is_legal_position(p))
    assert list(compiled.positions) == expected
    assert compiled.num_levels == len(expected)
    assert len(compiled.intervals) == len(expected) + 1


def test_intervals_cover_the_net(any_net):
    compiled = CompiledNet(any_net, uniform_candidates(any_net, from_microns(200.0)))
    # Walk order: receiver-side interval first, driver last.
    assert compiled.intervals[0].downstream == pytest.approx(any_net.total_length)
    assert compiled.intervals[-1].upstream == 0.0
    for before, after in zip(compiled.intervals, compiled.intervals[1:]):
        assert before.upstream == pytest.approx(after.downstream)
    total_r = sum(interval.resistance for interval in compiled.intervals)
    total_c = sum(interval.capacitance for interval in compiled.intervals)
    assert total_r == pytest.approx(any_net.total_resistance)
    assert total_c == pytest.approx(any_net.total_capacitance)


def test_traverse_bitwise_matches_traverse_wire(any_net):
    compiled = CompiledNet(any_net, uniform_candidates(any_net, from_microns(200.0)))
    rng = np.random.default_rng(7)
    caps = rng.uniform(1e-14, 5e-13, size=32)
    delays = rng.uniform(0.0, 1e-9, size=32)
    legacy_caps, legacy_delays = caps, delays
    compiled_caps, compiled_delays = caps, delays
    previous = any_net.total_length
    for level, position in enumerate([*reversed(compiled.positions), 0.0]):
        legacy_caps, legacy_delays = traverse_wire(
            any_net, position, previous, legacy_caps, legacy_delays
        )
        compiled_caps, compiled_delays = compiled.traverse(
            level, compiled_caps, compiled_delays
        )
        assert np.array_equal(legacy_caps, compiled_caps), f"caps diverge at level {level}"
        assert np.array_equal(legacy_delays, compiled_delays), f"delays diverge at level {level}"
        previous = position


def test_traverse_affine_close_to_exact(any_net):
    compiled = CompiledNet(any_net, uniform_candidates(any_net, from_microns(200.0)))
    rng = np.random.default_rng(8)
    caps = rng.uniform(1e-14, 5e-13, size=16)
    delays = rng.uniform(0.0, 1e-9, size=16)
    exact_caps, exact_delays = caps, delays
    affine_caps, affine_delays = caps, delays
    for level in range(len(compiled.intervals)):
        exact_caps, exact_delays = compiled.traverse(level, exact_caps, exact_delays)
        affine_caps, affine_delays = compiled.traverse_affine(level, affine_caps, affine_delays)
    np.testing.assert_allclose(affine_caps, exact_caps, rtol=1e-12)
    np.testing.assert_allclose(affine_delays, exact_delays, rtol=1e-9)


def test_traverse_does_not_mutate_inputs(any_net):
    compiled = CompiledNet(any_net, uniform_candidates(any_net, from_microns(200.0)))
    caps = np.array([1e-13])
    delays = np.array([0.0])
    compiled.traverse(0, caps, delays)
    assert caps[0] == 1e-13
    assert delays[0] == 0.0


def test_no_candidates_single_interval(any_net):
    compiled = CompiledNet(any_net, [])
    assert compiled.num_levels == 0
    assert len(compiled.intervals) == 1
    caps, delays = compiled.traverse(0, np.array([1e-13]), np.array([0.0]))
    legacy_caps, legacy_delays = traverse_wire(
        any_net, 0.0, any_net.total_length, np.array([1e-13]), np.array([0.0])
    )
    assert np.array_equal(caps, legacy_caps)
    assert np.array_equal(delays, legacy_delays)
