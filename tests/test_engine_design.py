"""Tests for the batch DesignEngine, the protocol store and the CLI sweep."""

from __future__ import annotations

import dataclasses
import json

import numpy as np
import pytest

from repro.core.rip import InfeasibleNetError, PreparedNet, Rip, RipConfig
from repro.dp.candidates import uniform_candidates
from repro.dp.frontier import DelayWidthFrontier
from repro.dp.powerdp import DpStatistics, PowerAwareDp, PowerDpResult
from repro.dp.vanginneken import DelayOptimalDp
from repro.engine.cache import (
    ProtocolConfig,
    ProtocolStore,
    protocol_key,
    timing_targets,
)
from repro.engine.design import DesignEngine, MethodSpec, TargetSpec
from repro.tech.library import RepeaterLibrary
from repro.utils.validation import ValidationError

TINY = ProtocolConfig(num_nets=2, targets_per_net=4, seed=13)


@pytest.fixture(scope="module")
def tiny_store():
    return ProtocolStore()


@pytest.fixture(scope="module")
def tiny_cases(tiny_store):
    return tiny_store.cases(TINY)


def _methods():
    return [
        MethodSpec.rip_method(),
        MethodSpec.dp_baseline("dp-g40", RepeaterLibrary.uniform_count(10.0, 40.0, 10)),
    ]


# --------------------------------------------------------------------------- #
# protocol store
# --------------------------------------------------------------------------- #
def test_store_builds_cases_with_tau_min(tiny_cases, tech):
    assert len(tiny_cases) == TINY.num_nets
    delay_dp = DelayOptimalDp(tech)
    for case in tiny_cases:
        assert case.targets == timing_targets(case.tau_min, count=TINY.targets_per_net)
        direct = delay_dp.minimum_delay(
            case.net, TINY.tau_min_library, uniform_candidates(case.net, TINY.tau_min_pitch)
        )
        assert case.tau_min == direct


def test_store_memoizes_in_memory(tiny_store, tiny_cases):
    assert tiny_store.cases(TINY) is tiny_cases


def test_store_disk_roundtrip_is_exact(tmp_path, tiny_cases):
    first = ProtocolStore(cache_dir=tmp_path)
    built = first.cases(TINY)
    assert (tmp_path / f"protocol-{protocol_key(TINY)}.json").is_file()
    second = ProtocolStore(cache_dir=tmp_path)
    loaded = second.cases(TINY)
    assert loaded is not built
    for a, b in zip(built, loaded):
        assert a.tau_min == b.tau_min
        assert a.targets == b.targets
        assert a.candidates == b.candidates
        assert a.net.segments == b.net.segments
        assert a.net.forbidden_zones == b.net.forbidden_zones


def test_protocol_key_distinguishes_configs():
    base = protocol_key(TINY)
    assert protocol_key(dataclasses.replace(TINY, seed=14)) != base
    assert protocol_key(dataclasses.replace(TINY, num_nets=3)) != base
    assert protocol_key(TINY) == base


def test_store_ignores_stale_format(tmp_path):
    store = ProtocolStore(cache_dir=tmp_path)
    path = tmp_path / f"protocol-{protocol_key(TINY)}.json"
    path.write_text(json.dumps({"format_version": -1, "cases": []}), encoding="utf-8")
    cases = store.cases(TINY)  # falls back to building
    assert len(cases) == TINY.num_nets


# --------------------------------------------------------------------------- #
# engine vs. a hand-rolled seed-style harness (golden equivalence)
# --------------------------------------------------------------------------- #
def test_engine_records_match_hand_rolled_loop(tiny_cases, tech):
    rip_config = RipConfig()
    engine = DesignEngine(tech, rip_config=rip_config, workers=0, store=ProtocolStore())
    methods = _methods()
    population = engine.design_population(tiny_cases, methods)

    rip = Rip(tech, rip_config)
    dp = PowerAwareDp(tech, pruning=rip_config.pruning)
    library = methods[1].library
    for case, net_result in zip(tiny_cases, population.nets):
        frontier = dp.run(case.net, library, case.candidates)
        prepared = rip.prepare(case.net)
        for record_rip, record_dp, target in zip(
            net_result.records_for("rip"), net_result.records_for("dp-g40"), case.targets
        ):
            outcome = rip.run_prepared(prepared, target)
            assert record_rip.feasible == outcome.feasible
            if outcome.feasible:
                assert record_rip.total_width == outcome.total_width
                assert record_rip.delay == outcome.delay
            point = frontier.best_for_delay(target)
            assert record_dp.feasible == (point is not None)
            if point is not None:
                assert record_dp.total_width == point.total_width
                assert record_dp.delay == point.delay


def test_engine_parallel_matches_serial(tiny_cases, tech):
    methods = _methods()
    serial = DesignEngine(tech, workers=0, store=ProtocolStore())
    parallel = DesignEngine(tech, workers=2, store=ProtocolStore())
    key = lambda result: [
        (r.net_name, r.method, r.target, r.feasible, r.total_width, r.delay)
        for r in result.records()
    ]
    assert key(serial.design_population(tiny_cases, methods)) == key(
        parallel.design_population(tiny_cases, methods)
    )


def test_engine_target_spec_resweeps(tiny_cases, tech):
    engine = DesignEngine(tech, workers=0, store=ProtocolStore())
    spec = TargetSpec(count=3, min_factor=1.2, max_factor=1.8)
    population = engine.design_population(tiny_cases[:1], _methods(), targets=spec)
    net_result = population.nets[0]
    assert net_result.targets == spec.targets_for(net_result.tau_min)
    assert len(net_result.records_for("rip")) == 3


def test_engine_statistics(tiny_cases, tech):
    engine = DesignEngine(tech, workers=0, store=ProtocolStore())
    population = engine.design_population(tiny_cases, _methods())
    stats = population.statistics
    assert stats.num_designs == len(population.records())
    assert stats.states_generated > 0
    assert stats.states_per_second > 0
    assert population.net(tiny_cases[0].net.name).net_name == tiny_cases[0].net.name
    with pytest.raises(KeyError):
        population.net("nope")


def test_method_spec_validation():
    with pytest.raises(ValidationError):
        MethodSpec(name="dp", kind="dp")  # dp without library
    with pytest.raises(ValidationError):
        MethodSpec(name="x", kind="magic")
    engine_methods = [MethodSpec.rip_method(), MethodSpec.rip_method()]
    from repro.tech.nodes import NODE_180NM

    engine = DesignEngine(NODE_180NM)
    with pytest.raises(ValidationError):
        engine.design_population([], engine_methods)  # duplicate names


# --------------------------------------------------------------------------- #
# InfeasibleNetError (satellite bugfix)
# --------------------------------------------------------------------------- #
def _empty_dp_result():
    statistics = DpStatistics(
        num_candidates=0,
        library_size=0,
        states_generated=0,
        max_front_size=0,
        runtime_seconds=0.0,
    )
    return PowerDpResult(frontier=DelayWidthFrontier([]), statistics=statistics)


def _empty_prepared(net):
    return PreparedNet(
        net=net, coarse_result=_empty_dp_result(), coarse_candidates=(), preparation_seconds=0.0
    )


def test_rip_raises_infeasible_on_empty_coarse_frontier(tech, uniform_net):
    rip = Rip(tech)
    with pytest.raises(InfeasibleNetError) as excinfo:
        rip.run_prepared(_empty_prepared(uniform_net), 1e-9)
    assert excinfo.value.net_name == uniform_net.name
    assert "coarse" in excinfo.value.stage


def test_rip_raises_infeasible_on_empty_final_frontier(tech, uniform_net, monkeypatch):
    rip = Rip(tech)
    prepared = rip.prepare(uniform_net)
    monkeypatch.setattr(rip._dp, "run", lambda *args, **kwargs: _empty_dp_result())
    with pytest.raises(InfeasibleNetError) as excinfo:
        rip.run_prepared(prepared, 1e-9)
    assert "final" in excinfo.value.stage


# --------------------------------------------------------------------------- #
# integer-step candidate grid (satellite bugfix)
# --------------------------------------------------------------------------- #
def test_legal_positions_are_exact_grid_products(tech):
    from tests.conftest import build_uniform_net

    net = build_uniform_net(tech, length_um=12000.0)
    pitch = 37e-6  # deliberately not representable as a clean binary fraction
    positions = net.legal_positions(pitch)
    assert positions
    for index, position in enumerate(positions):
        assert position == (index + 1) * pitch  # exact, not approx
    assert positions[-1] < net.total_length


def test_legal_positions_no_drift_on_long_fine_grids(tech):
    from tests.conftest import build_uniform_net

    net = build_uniform_net(tech, length_um=10000.0)
    pitch = 1e-6
    positions = np.asarray(net.legal_positions(pitch))
    assert len(positions) == 9999
    expected = pitch * np.arange(1, len(positions) + 1)
    assert np.array_equal(positions, expected)
