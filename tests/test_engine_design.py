"""Tests for the batch DesignEngine, the protocol store and the CLI sweep."""

from __future__ import annotations

import dataclasses
import json
import os
import pickle
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.core.rip import InfeasibleNetError, PreparedNet, Rip, RipConfig
from repro.dp.candidates import uniform_candidates
from repro.dp.frontier import DelayWidthFrontier
from repro.dp.powerdp import DpStatistics, PowerAwareDp, PowerDpResult
from repro.dp.vanginneken import DelayOptimalDp
from repro.engine.cache import (
    ProtocolConfig,
    ProtocolStore,
    protocol_key,
    timing_targets,
)
from repro.engine.design import DesignEngine, MethodSpec, TargetSpec
from repro.tech.library import RepeaterLibrary
from repro.utils.validation import ValidationError

TINY = ProtocolConfig(num_nets=2, targets_per_net=4, seed=13)


@pytest.fixture(scope="module")
def tiny_store():
    return ProtocolStore()


@pytest.fixture(scope="module")
def tiny_cases(tiny_store):
    return tiny_store.cases(TINY)


def _methods():
    return [
        MethodSpec.rip_method(),
        MethodSpec.dp_baseline("dp-g40", RepeaterLibrary.uniform_count(10.0, 40.0, 10)),
    ]


# --------------------------------------------------------------------------- #
# protocol store
# --------------------------------------------------------------------------- #
def test_store_builds_cases_with_tau_min(tiny_cases, tech):
    assert len(tiny_cases) == TINY.num_nets
    delay_dp = DelayOptimalDp(tech)
    for case in tiny_cases:
        assert case.targets == timing_targets(case.tau_min, count=TINY.targets_per_net)
        direct = delay_dp.minimum_delay(
            case.net, TINY.tau_min_library, uniform_candidates(case.net, TINY.tau_min_pitch)
        )
        assert case.tau_min == direct


def test_store_memoizes_in_memory(tiny_store, tiny_cases):
    assert tiny_store.cases(TINY) is tiny_cases


def test_store_disk_roundtrip_is_exact(tmp_path, tiny_cases):
    first = ProtocolStore(cache_dir=tmp_path)
    built = first.cases(TINY)
    assert (tmp_path / f"protocol-{protocol_key(TINY)}.json").is_file()
    second = ProtocolStore(cache_dir=tmp_path)
    loaded = second.cases(TINY)
    assert loaded is not built
    for a, b in zip(built, loaded):
        assert a.tau_min == b.tau_min
        assert a.targets == b.targets
        assert a.candidates == b.candidates
        assert a.net.segments == b.net.segments
        assert a.net.forbidden_zones == b.net.forbidden_zones


def test_protocol_key_distinguishes_configs():
    base = protocol_key(TINY)
    assert protocol_key(dataclasses.replace(TINY, seed=14)) != base
    assert protocol_key(dataclasses.replace(TINY, num_nets=3)) != base
    assert protocol_key(TINY) == base


def test_protocol_key_stable_across_interpreter_runs():
    """Regression: keys must be byte-identical across processes.

    The old ``json.dumps(..., default=repr)`` serializer embedded memory
    addresses for bare objects, so a key could change between interpreter
    runs.  Two fresh interpreters (with different hash randomization, which
    must not matter either) must agree with each other and with this
    process.
    """
    src_dir = str(Path(__file__).resolve().parent.parent / "src")
    code = (
        "from repro.engine.cache import ProtocolConfig, protocol_key;"
        "print(protocol_key(ProtocolConfig(num_nets=2, targets_per_net=4, seed=13)))"
    )
    keys = []
    for hash_seed in ("1", "2"):
        env = dict(os.environ)
        env["PYTHONPATH"] = src_dir
        env["PYTHONHASHSEED"] = hash_seed
        result = subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True,
            text=True,
            env=env,
            check=True,
        )
        keys.append(result.stdout.strip())
    assert keys[0] == keys[1] == protocol_key(TINY)


def test_protocol_key_rejects_unserializable_technology():
    """The strict serializer raises instead of hashing an unstable repr."""
    from repro.utils.canonical import CanonicalizationError

    class OpaquePower:
        pass

    technology = dataclasses.replace(TINY.technology, power=OpaquePower())
    with pytest.raises(CanonicalizationError):
        protocol_key(dataclasses.replace(TINY, technology=technology))


def _store_path(tmp_path):
    return tmp_path / f"protocol-{protocol_key(TINY)}.json"


def test_store_evicts_stale_format_version(tmp_path):
    store = ProtocolStore(cache_dir=tmp_path)
    path = _store_path(tmp_path)
    path.write_text(json.dumps({"format_version": -1, "cases": []}), encoding="utf-8")
    cases = store.cases(TINY)  # evicts, then rebuilds and re-saves
    assert len(cases) == TINY.num_nets
    data = json.loads(path.read_text(encoding="utf-8"))
    assert data["format_version"] == ProtocolStore.FORMAT_VERSION
    assert len(data["cases"]) == TINY.num_nets


def test_store_evicts_corrupted_cache_file(tmp_path):
    store = ProtocolStore(cache_dir=tmp_path)
    path = _store_path(tmp_path)
    path.write_text("{not json at all", encoding="utf-8")
    cases = store.cases(TINY)
    assert len(cases) == TINY.num_nets
    assert json.loads(path.read_text(encoding="utf-8"))["key"] == protocol_key(TINY)


def test_store_evicts_key_and_net_version_mismatches(tmp_path):
    from repro.engine.cache import NET_FORMAT_VERSION

    # A payload whose embedded key does not match its file name.
    store = ProtocolStore(cache_dir=tmp_path)
    path = _store_path(tmp_path)
    path.write_text(
        json.dumps(
            {
                "format_version": ProtocolStore.FORMAT_VERSION,
                "net_format_version": NET_FORMAT_VERSION,
                "key": "not-the-right-key",
                "cases": [],
            }
        ),
        encoding="utf-8",
    )
    assert len(store.cases(TINY)) == TINY.num_nets

    # An entry written before a net-serialization bump.
    store2 = ProtocolStore(cache_dir=tmp_path)
    path.write_text(
        json.dumps(
            {
                "format_version": ProtocolStore.FORMAT_VERSION,
                "net_format_version": NET_FORMAT_VERSION - 1,
                "key": protocol_key(TINY),
                "cases": [],
            }
        ),
        encoding="utf-8",
    )
    assert len(store2.cases(TINY)) == TINY.num_nets
    assert (
        json.loads(path.read_text(encoding="utf-8"))["net_format_version"]
        == NET_FORMAT_VERSION
    )


# --------------------------------------------------------------------------- #
# engine vs. a hand-rolled seed-style harness (golden equivalence)
# --------------------------------------------------------------------------- #
def test_engine_records_match_hand_rolled_loop(tiny_cases, tech):
    rip_config = RipConfig()
    engine = DesignEngine(tech, rip_config=rip_config, workers=0, store=ProtocolStore())
    methods = _methods()
    population = engine.design_population(tiny_cases, methods)

    rip = Rip(tech, rip_config)
    dp = PowerAwareDp(tech, pruning=rip_config.pruning)
    library = methods[1].library
    for case, net_result in zip(tiny_cases, population.nets):
        frontier = dp.run(case.net, library, case.candidates)
        prepared = rip.prepare(case.net)
        for record_rip, record_dp, target in zip(
            net_result.records_for("rip"), net_result.records_for("dp-g40"), case.targets
        ):
            outcome = rip.run_prepared(prepared, target)
            assert record_rip.feasible == outcome.feasible
            if outcome.feasible:
                assert record_rip.total_width == outcome.total_width
                assert record_rip.delay == outcome.delay
            point = frontier.best_for_delay(target)
            assert record_dp.feasible == (point is not None)
            if point is not None:
                assert record_dp.total_width == point.total_width
                assert record_dp.delay == point.delay


def test_engine_parallel_matches_serial(tiny_cases, tech):
    methods = _methods()
    serial = DesignEngine(tech, workers=0, store=ProtocolStore())
    parallel = DesignEngine(tech, workers=2, store=ProtocolStore())
    key = lambda result: [
        (r.net_name, r.method, r.target, r.feasible, r.total_width, r.delay)
        for r in result.records()
    ]
    assert key(serial.design_population(tiny_cases, methods)) == key(
        parallel.design_population(tiny_cases, methods)
    )


def test_engine_target_spec_resweeps(tiny_cases, tech):
    engine = DesignEngine(tech, workers=0, store=ProtocolStore())
    spec = TargetSpec(count=3, min_factor=1.2, max_factor=1.8)
    population = engine.design_population(tiny_cases[:1], _methods(), targets=spec)
    net_result = population.nets[0]
    assert net_result.targets == spec.targets_for(net_result.tau_min)
    assert len(net_result.records_for("rip")) == 3


def test_engine_statistics(tiny_cases, tech):
    engine = DesignEngine(tech, workers=0, store=ProtocolStore())
    population = engine.design_population(tiny_cases, _methods())
    stats = population.statistics
    assert stats.num_designs == len(population.records())
    assert stats.states_generated > 0
    assert stats.states_per_second > 0
    assert population.net(tiny_cases[0].net.name).net_name == tiny_cases[0].net.name
    with pytest.raises(KeyError):
        population.net("nope")


def test_method_spec_validation():
    with pytest.raises(ValidationError):
        MethodSpec(name="dp", kind="dp")  # dp without library
    with pytest.raises(ValidationError):
        MethodSpec(name="x", kind="magic")
    engine_methods = [MethodSpec.rip_method(), MethodSpec.rip_method()]
    from repro.tech.nodes import NODE_180NM

    engine = DesignEngine(NODE_180NM)
    with pytest.raises(ValidationError):
        engine.design_population([], engine_methods)  # duplicate names


# --------------------------------------------------------------------------- #
# multi-technology sweeps
# --------------------------------------------------------------------------- #
MULTI = ProtocolConfig(num_nets=1, targets_per_net=3, seed=13)


@pytest.fixture(scope="module")
def multi_tech_result(tech):
    from repro.tech.nodes import NODE_90NM

    engine = DesignEngine(tech, workers=0, store=ProtocolStore())
    return engine, engine.design_population(
        methods=_methods(), technologies=[tech, NODE_90NM], protocol=MULTI
    )


def test_multi_technology_sweep_covers_every_node(multi_tech_result):
    _, result = multi_tech_result
    assert result.technologies == ("cmos180", "cmos90")
    for name in result.technologies:
        nets = result.for_technology(name)
        assert len(nets) == MULTI.num_nets
        for net_result in nets:
            assert net_result.technology == name
            assert not net_result.failed
            assert all(record.technology == name for record in net_result.records)
            # rip + dp methods, each answering every target
            assert len(net_result.records) == 2 * MULTI.targets_per_net
    with pytest.raises(KeyError):
        result.for_technology("cmos3")


def test_multi_technology_primary_slice_matches_single_tech_run(multi_tech_result, tech):
    engine, result = multi_tech_result
    single = engine.design_population(engine.build_cases(MULTI), _methods())
    key = lambda nets: [
        (r.net_name, r.method, r.target, r.feasible, r.total_width, r.delay)
        for net in nets
        for r in net.records
    ]
    assert key(result.for_technology(tech.name)) == key(single.nets)


def test_multi_technology_parallel_matches_serial(tech):
    from repro.tech.nodes import NODE_90NM

    kwargs = dict(methods=_methods(), technologies=[tech, NODE_90NM], protocol=MULTI)
    store = ProtocolStore()
    serial = DesignEngine(tech, workers=0, store=store).design_population(**kwargs)
    parallel = DesignEngine(tech, workers=2, store=store).design_population(**kwargs)
    key = lambda result: [
        (r.technology, r.net_name, r.method, r.target, r.feasible, r.total_width, r.delay)
        for r in result.records()
    ]
    assert key(serial) == key(parallel)


def test_multi_technology_stores_sit_side_by_side(tmp_path, tech):
    from repro.engine.cache import protocol_key as key_of
    from repro.tech.nodes import NODE_90NM

    engine = DesignEngine(tech, workers=0, store=ProtocolStore(cache_dir=tmp_path))
    engine.design_population(
        methods=[MethodSpec.rip_method()], technologies=[tech, NODE_90NM], protocol=MULTI
    )
    primary_key = key_of(MULTI)
    scaled_key = key_of(engine.protocol_for(MULTI, NODE_90NM))
    assert (tmp_path / f"protocol-{primary_key}.json").is_file()
    assert (tmp_path / "cmos90" / f"protocol-{scaled_key}.json").is_file()
    assert engine.store_for(NODE_90NM).cache_dir == tmp_path / "cmos90"


def test_protocol_for_adapts_layers_to_scaled_nodes(tech):
    from repro.tech.nodes import NODE_90NM

    adapted = DesignEngine.protocol_for(MULTI, NODE_90NM)
    assert adapted.technology is NODE_90NM
    assert all(layer in NODE_90NM.layers for layer in adapted.net_config.layers)
    assert len(adapted.net_config.layers) == len(MULTI.net_config.layers)
    # The primary node keeps its configured layers untouched.
    assert DesignEngine.protocol_for(MULTI, tech).net_config.layers == (
        MULTI.net_config.layers
    )


def test_design_population_argument_validation(tech):
    from repro.tech.nodes import NODE_90NM

    engine = DesignEngine(tech, store=ProtocolStore())
    with pytest.raises(ValidationError):
        engine.design_population(methods=_methods())  # no cases, no technologies
    with pytest.raises(ValidationError):
        engine.design_population(
            methods=_methods(), technologies=[NODE_90NM], protocol=None
        )
    with pytest.raises(ValidationError):
        engine.design_population(
            [], _methods(), technologies=[NODE_90NM], protocol=MULTI
        )
    with pytest.raises(ValidationError):
        engine.design_population(
            methods=_methods(), technologies=[tech, tech], protocol=MULTI
        )


# --------------------------------------------------------------------------- #
# InfeasibleNetError (satellite bugfix)
# --------------------------------------------------------------------------- #
def _empty_dp_result():
    statistics = DpStatistics(
        num_candidates=0,
        library_size=0,
        states_generated=0,
        max_front_size=0,
        runtime_seconds=0.0,
    )
    return PowerDpResult(frontier=DelayWidthFrontier([]), statistics=statistics)


def _empty_prepared(net):
    return PreparedNet(
        net=net, coarse_result=_empty_dp_result(), coarse_candidates=(), preparation_seconds=0.0
    )


def test_rip_raises_infeasible_on_empty_coarse_frontier(tech, uniform_net):
    rip = Rip(tech)
    with pytest.raises(InfeasibleNetError) as excinfo:
        rip.run_prepared(_empty_prepared(uniform_net), 1e-9)
    assert excinfo.value.net_name == uniform_net.name
    assert "coarse" in excinfo.value.stage


def test_rip_raises_infeasible_on_empty_final_frontier(tech, uniform_net, monkeypatch):
    rip = Rip(tech)
    prepared = rip.prepare(uniform_net)
    monkeypatch.setattr(rip._dp, "run", lambda *args, **kwargs: _empty_dp_result())
    with pytest.raises(InfeasibleNetError) as excinfo:
        rip.run_prepared(prepared, 1e-9)
    assert "final" in excinfo.value.stage


def test_infeasible_error_survives_pickling():
    """Regression: the error must round-trip through a worker process.

    The default exception reduction replays ``args`` (the formatted
    message) into ``__init__(net_name, stage)``, which used to die with a
    ``TypeError`` when a ``ProcessPoolExecutor`` shipped the error back.
    """
    error = InfeasibleNetError("net7", "final DP pass")
    clone = pickle.loads(pickle.dumps(error))
    assert isinstance(clone, InfeasibleNetError)
    assert clone.net_name == "net7"
    assert clone.stage == "final DP pass"
    assert str(clone) == str(error)


def test_design_population_reports_infeasible_nets_per_net(tech, tiny_cases, monkeypatch):
    """A net that cannot be designed must not abort the sweep."""
    import repro.engine.design as design_module

    poisoned = tiny_cases[0].net.name

    class PoisonedRip(Rip):
        def prepare(self, net):
            if net.name == poisoned:
                raise InfeasibleNetError(net.name, "coarse DP pass")
            return super().prepare(net)

    monkeypatch.setattr(design_module, "Rip", PoisonedRip)
    engine = DesignEngine(tech, workers=0, store=ProtocolStore())
    result = engine.design_population(tiny_cases, _methods())

    assert len(result.nets) == len(tiny_cases)
    failures = result.failures()
    assert [failure.net_name for failure in failures] == [poisoned]
    assert failures[0].failed and poisoned in failures[0].error
    # The healthy nets designed normally.
    healthy = [net for net in result.nets if not net.failed]
    assert len(healthy) == len(tiny_cases) - 1
    assert all(net.records for net in healthy)
    # Flattened records only contain designed rows.
    assert all(record.net_name != poisoned for record in result.records())


def test_failed_net_mid_sweep_drops_partial_records(tech, tiny_cases, monkeypatch):
    """A failure after some targets designed must not leave partial rows:
    records()/num_designs stay consistent with the table aggregations,
    which skip failed nets wholesale."""
    import repro.engine.design as design_module

    poisoned = tiny_cases[0].net.name
    calls = {"count": 0}

    class MidFailRip(Rip):
        def run_prepared(self, prepared, target):
            if prepared.net.name == poisoned:
                calls["count"] += 1
                if calls["count"] >= 2:  # fail from the second target on
                    raise InfeasibleNetError(prepared.net.name, "final DP pass")
            return super().run_prepared(prepared, target)

    monkeypatch.setattr(design_module, "Rip", MidFailRip)
    engine = DesignEngine(tech, workers=0, store=ProtocolStore())
    result = engine.design_population(tiny_cases, _methods())

    failed = result.failures()[0]
    assert failed.net_name == poisoned
    assert failed.records == () and failed.method_runtimes == {}
    assert all(record.net_name != poisoned for record in result.records())
    assert result.statistics.num_designs == len(result.records())


# --------------------------------------------------------------------------- #
# integer-step candidate grid (satellite bugfix)
# --------------------------------------------------------------------------- #
def test_legal_positions_are_exact_grid_products(tech):
    from tests.conftest import build_uniform_net

    net = build_uniform_net(tech, length_um=12000.0)
    pitch = 37e-6  # deliberately not representable as a clean binary fraction
    positions = net.legal_positions(pitch)
    assert positions
    for index, position in enumerate(positions):
        assert position == (index + 1) * pitch  # exact, not approx
    assert positions[-1] < net.total_length


def test_legal_positions_no_drift_on_long_fine_grids(tech):
    from tests.conftest import build_uniform_net

    net = build_uniform_net(tech, length_um=10000.0)
    pitch = 1e-6
    positions = np.asarray(net.legal_positions(pitch))
    assert len(positions) == 9999
    expected = pitch * np.arange(1, len(positions) + 1)
    assert np.array_equal(positions, expected)
