"""Golden equivalence: vectorized kernels vs. the reference path, seed population.

The vectorized pruning kernels and the compiled-net traversal must
reproduce the legacy per-net results *bit-for-bit* on the experimental seed
population: identical power-DP frontiers (delays, widths and the actual
repeater assignments), identical ``tau_min``, and Table-1 rows identical
through the engine and through direct per-net computation.
"""

from __future__ import annotations

import pytest

from repro.dp.candidates import uniform_candidates
from repro.dp.powerdp import PowerAwareDp
from repro.dp.pruning import PruningConfig
from repro.dp.vanginneken import DelayOptimalDp
from repro.engine.cache import ProtocolConfig, ProtocolStore
from repro.experiments.table1 import Table1Config, run_table1
from repro.tech.library import RepeaterLibrary
from repro.tech.nodes import NODE_180NM

# A slice of the paper's seed population (seed 2005), kept small so the
# reference kernels (Python loops) stay affordable in the tier-1 suite.
GOLDEN = ProtocolConfig(num_nets=4, targets_per_net=6, seed=2005)


@pytest.fixture(scope="module")
def golden_cases():
    return ProtocolStore().cases(GOLDEN)


def _frontier_signature(result):
    return [
        (point.delay, point.total_width, point.solution.positions, point.solution.widths)
        for point in result.frontier
    ]


@pytest.mark.parametrize("strategy", ["full", "bucket"])
def test_power_dp_frontiers_bitwise_equal(golden_cases, strategy):
    library = RepeaterLibrary.uniform_count(10.0, 40.0, 10)
    vectorized = PowerAwareDp(
        NODE_180NM, pruning=PruningConfig(strategy=strategy, kernel="vectorized")
    )
    reference = PowerAwareDp(
        NODE_180NM, pruning=PruningConfig(strategy=strategy, kernel="reference")
    )
    for case in golden_cases:
        fast = vectorized.run(case.net, library, case.candidates)
        slow = reference.run(case.net, library, case.candidates)
        assert _frontier_signature(fast) == _frontier_signature(slow)


def test_tau_min_bitwise_equal(golden_cases):
    library = GOLDEN.tau_min_library
    # The reference-kernel delay DP with the rich tau_min library is slow;
    # two nets keep the check honest without dominating the suite.
    for case in golden_cases[:2]:
        candidates = uniform_candidates(case.net, GOLDEN.tau_min_pitch)
        fast = DelayOptimalDp(NODE_180NM).minimum_delay(case.net, library, candidates)
        slow = DelayOptimalDp(NODE_180NM, pruning_kernel="reference").minimum_delay(
            case.net, library, candidates
        )
        assert fast == slow
        assert fast == case.tau_min


def test_table1_engine_matches_reference_kernels(golden_cases):
    """The full Table 1 pipeline agrees between kernels, row for row."""
    def rows(kernel):
        from repro.core.rip import RipConfig

        config = Table1Config(
            protocol=GOLDEN,
            baseline_granularities=(20.0, 40.0),
            rip=RipConfig(pruning=PruningConfig(kernel=kernel)),
        )
        from repro.engine.design import DesignEngine

        engine = DesignEngine(
            NODE_180NM,
            rip_config=config.rip,
            pruning=config.rip.pruning,
            store=ProtocolStore(),
        )
        result = run_table1(config, engine=engine)
        return [
            (row.net_name, row.tau_min, row.delta_max, row.delta_mean, row.violations,
             row.rip_violations)
            for row in result.rows
        ]

    assert rows("vectorized") == rows("reference")
