"""Opt-in ``traverse_affine`` fast mode: drift bounds and plumbing.

The affine traversal folds each precompiled wire interval into one
closed-form expression; it re-associates floating-point sums, so delays may
drift by ~1 ulp per interval relative to the exact per-piece kernel.  The
property tests here bound that drift on the seed population (empirically
~2e-15 relative; asserted at 1e-12 with three orders of magnitude margin)
and check the mode can never flip a feasibility verdict or change a width.
"""

from __future__ import annotations

import pytest

from repro.core.rip import Rip, RipConfig
from repro.dp.powerdp import PowerAwareDp
from repro.engine.cache import ProtocolConfig, ProtocolStore
from repro.engine.design import DesignEngine, MethodSpec
from repro.tech.library import RepeaterLibrary
from repro.utils.validation import ValidationError

POPULATION = ProtocolConfig(num_nets=3, targets_per_net=6, seed=2005)


@pytest.fixture(scope="module")
def population():
    return ProtocolStore().cases(POPULATION)


def test_affine_frontier_drift_bounded_on_population(tech, population):
    library = RepeaterLibrary.uniform(10.0, 400.0, 20.0)
    for case in population:
        exact = PowerAwareDp(tech).run(case.net, library, case.candidates)
        affine = PowerAwareDp(tech, traversal="affine").run(
            case.net, library, case.candidates
        )
        exact_points = exact.frontier.points
        affine_points = affine.frontier.points
        assert len(exact_points) == len(affine_points)
        for a, b in zip(exact_points, affine_points):
            # Width structure is identical; delays drift by at most ~1 ulp
            # per interval (documented bound, 1000x margin here).
            assert b.total_width == a.total_width
            assert b.solution.positions == a.solution.positions
            assert b.solution.widths == a.solution.widths
            assert b.delay == pytest.approx(a.delay, rel=1e-12)
        for target in case.targets:
            exact_best = exact.best_for_delay(target)
            affine_best = affine.best_for_delay(target)
            assert (exact_best is None) == (affine_best is None)
            if exact_best is not None:
                assert affine_best.total_width == exact_best.total_width


def test_affine_rip_flow_stays_feasible(tech, population):
    case = population[0]
    exact = Rip(tech, window_cache=False)
    affine = Rip(tech, RipConfig(traversal="affine"), window_cache=False)
    prepared_exact = exact.prepare(case.net)
    prepared_affine = affine.prepare(case.net)
    for target in case.targets:
        result_exact = exact.run_prepared(prepared_exact, target)
        result_affine = affine.run_prepared(prepared_affine, target)
        assert result_affine.feasible == result_exact.feasible
        if result_exact.feasible:
            assert result_affine.total_width == pytest.approx(
                result_exact.total_width, rel=1e-6
            )


def test_affine_and_exact_do_not_share_frontier_cache_entries(tech):
    from repro.dp.pruning import PruningConfig
    from repro.engine.wincache import dp_context_fingerprint

    pruning = PruningConfig()
    assert dp_context_fingerprint(tech, pruning) == dp_context_fingerprint(
        tech, pruning, traversal="exact"
    )
    assert dp_context_fingerprint(tech, pruning, traversal="affine") != (
        dp_context_fingerprint(tech, pruning, traversal="exact")
    )


def test_engine_method_level_fast_mode(tech, population):
    library = RepeaterLibrary.uniform_count(10.0, 40.0, 10)
    engine = DesignEngine(tech, workers=0, store=ProtocolStore())
    result = engine.design_population(
        population,
        [
            MethodSpec.dp_baseline("dp-exact", library),
            MethodSpec.dp_baseline("dp-affine", library, traversal="affine"),
        ],
    )
    for net_result in result.nets:
        exact_records = net_result.records_for("dp-exact")
        affine_records = net_result.records_for("dp-affine")
        for a, b in zip(exact_records, affine_records):
            assert a.feasible == b.feasible
            if a.feasible:
                assert b.total_width == a.total_width
                assert b.delay == pytest.approx(a.delay, rel=1e-12)


def test_traversal_validation():
    from repro.tech.nodes import NODE_180NM

    with pytest.raises(ValidationError):
        PowerAwareDp(NODE_180NM, traversal="magic")
    with pytest.raises(ValidationError):
        RipConfig(traversal="magic")
    with pytest.raises(ValidationError):
        MethodSpec.dp_baseline(
            "dp", RepeaterLibrary.uniform_count(10.0, 40.0, 4), traversal="magic"
        )


def test_cli_traversal_flag_builds_affine_methods():
    from repro.cli.main import _parse_methods

    methods = _parse_methods("rip,dp-g40", traversal="affine")
    assert methods[0].rip is not None and methods[0].rip.traversal == "affine"
    assert methods[1].traversal == "affine"
    # Default stays exact with no override config allocated for RIP.
    default = _parse_methods("rip,dp-g40")
    assert default[0].rip is None
    assert default[1].traversal == "exact"
