"""Property tests: vectorized pruning kernels against the reference loops.

At zero tolerance the vectorized kernels must reproduce the reference
Python-loop implementations *exactly* (dominance is transitive there, so
the "compare against kept states" and "compare against all earlier states"
formulations coincide).  At the default tolerances the kernels may prune a
state the reference keeps only when two states sit within a tolerance band
of each other; the quality property (every input state is dominated-within-
tolerance by a survivor) must hold regardless.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.dp.pruning import (
    PruningConfig,
    _bucket_prune,
    _cross_bucket_prune,
    prune_states,
    prune_two_dimensional,
)
from repro.engine import kernels


def _random_states(rng, count, buckets=6):
    caps = rng.uniform(1e-14, 5e-13, size=count)
    delays = rng.uniform(1e-10, 2e-9, size=count)
    widths = 10.0 * rng.integers(0, buckets, size=count).astype(float)
    return caps, delays, widths


# --------------------------------------------------------------------------- #
# segmented scan primitive
# --------------------------------------------------------------------------- #
def test_segmented_exclusive_min_matches_naive():
    rng = np.random.default_rng(11)
    for _ in range(20):
        n = int(rng.integers(1, 60))
        values = rng.uniform(0.0, 1.0, size=n)
        # Random contiguous groups.
        starts = np.zeros(n, dtype=np.int64)
        current = 0
        for index in range(1, n):
            if rng.uniform() < 0.3:
                current = index
            starts[index] = current
        result = kernels.segmented_exclusive_min(values, starts)
        for index in range(n):
            expected = (
                np.inf if index == starts[index] else values[starts[index]:index].min()
            )
            assert result[index] == expected


def test_segmented_exclusive_min_empty():
    assert len(kernels.segmented_exclusive_min(np.empty(0), np.empty(0, dtype=np.int64))) == 0


# --------------------------------------------------------------------------- #
# exact equality at zero tolerance
# --------------------------------------------------------------------------- #
@pytest.mark.parametrize("seed", range(8))
def test_bucket_prune_matches_reference_zero_tolerance(seed):
    rng = np.random.default_rng(seed)
    caps, delays, widths = _random_states(rng, int(rng.integers(1, 300)))
    config = PruningConfig(delay_tolerance=0.0, width_tolerance=0.0)
    reference = _bucket_prune(caps, delays, widths, config)
    vectorized = kernels.bucket_prune(
        caps, delays, widths, delay_tolerance=0.0, width_tolerance=0.0
    )
    assert sorted(reference.tolist()) == sorted(vectorized.tolist())


@pytest.mark.parametrize("seed", range(8))
def test_cross_bucket_prune_matches_reference_zero_tolerance(seed):
    rng = np.random.default_rng(100 + seed)
    caps, delays, widths = _random_states(rng, int(rng.integers(1, 200)))
    config = PruningConfig(delay_tolerance=0.0, width_tolerance=0.0)
    reference = _cross_bucket_prune(caps, delays, widths, config)
    vectorized = kernels.cross_bucket_prune(
        caps, delays, widths, delay_tolerance=0.0, width_tolerance=0.0
    )
    assert sorted(reference.tolist()) == sorted(vectorized.tolist())


@pytest.mark.parametrize("seed", range(8))
def test_pareto_2d_matches_reference_zero_tolerance(seed):
    rng = np.random.default_rng(200 + seed)
    caps, delays, _ = _random_states(rng, int(rng.integers(1, 300)))
    reference = prune_two_dimensional(caps, delays, delay_tolerance=0.0, kernel="reference")
    vectorized = prune_two_dimensional(caps, delays, delay_tolerance=0.0, kernel="vectorized")
    assert sorted(reference.tolist()) == sorted(vectorized.tolist())


def test_cross_block_boundaries():
    """Fronts larger than the comparison block size are handled correctly."""
    n = 3 * kernels._CROSS_BLOCK + 17
    rng = np.random.default_rng(5)
    caps = rng.uniform(0.0, 1.0, size=n)
    delays = rng.uniform(0.0, 1.0, size=n)
    widths = rng.uniform(0.0, 1.0, size=n)
    config = PruningConfig(delay_tolerance=0.0, width_tolerance=0.0)
    reference = _cross_bucket_prune(caps, delays, widths, config)
    vectorized = kernels.cross_bucket_prune(
        caps, delays, widths, delay_tolerance=0.0, width_tolerance=0.0
    )
    assert sorted(reference.tolist()) == sorted(vectorized.tolist())


# --------------------------------------------------------------------------- #
# quality properties at default tolerances
# --------------------------------------------------------------------------- #
@pytest.mark.parametrize("strategy", ["full", "bucket"])
@pytest.mark.parametrize("seed", range(4))
def test_prune_states_every_loser_is_dominated(strategy, seed):
    rng = np.random.default_rng(300 + seed)
    caps, delays, widths = _random_states(rng, 250)
    config = PruningConfig(strategy=strategy, kernel="vectorized")
    kept = prune_states(caps, delays, widths, config)
    assert len(kept) > 0
    kept_set = set(kept.tolist())
    quantum = max(config.width_tolerance, 1e-12)
    keys = np.round(widths / quantum)
    for index in range(len(caps)):
        if index in kept_set:
            continue
        if strategy == "bucket":
            dominators = (
                (keys == keys[index])
                & (caps <= caps[index])
                & (delays <= delays[index] + config.delay_tolerance)
            )
        else:
            dominators = (
                (caps <= caps[index])
                & (delays <= delays[index] + config.delay_tolerance)
                & (widths <= widths[index] + config.width_tolerance)
            )
        dominators[index] = False
        assert dominators[list(kept_set)].any(), f"state {index} dropped without dominator"


@pytest.mark.parametrize("kernel", ["vectorized", "reference"])
def test_prune_states_keeps_unique_minima(kernel):
    caps = np.array([1.0, 2.0, 3.0])
    delays = np.array([3.0, 2.0, 1.0])
    widths = np.array([1.0, 2.0, 3.0])
    kept = set(prune_states(caps, delays, widths, PruningConfig(kernel=kernel)).tolist())
    assert kept == {0, 1, 2}


def test_prune_states_vectorized_empty():
    empty = np.empty(0)
    assert len(prune_states(empty, empty, empty, PruningConfig(kernel="vectorized"))) == 0
    assert len(prune_two_dimensional(empty, empty, kernel="vectorized")) == 0


def test_pruning_config_rejects_unknown_kernel():
    from repro.utils.validation import ValidationError

    with pytest.raises(ValidationError):
        PruningConfig(kernel="gpu")
