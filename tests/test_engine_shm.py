"""Tests for the zero-copy shared-memory population transport (ISSUE 6).

Covers the :class:`repro.engine.shm.SharedPopulationArena` round trip (the
rebuilt jobs are bit-identical and genuinely zero-copy), the engine's
pool-path parity against the serial path, and the teardown hygiene contract:
``DesignEngine.close()`` / ``__exit__`` must unlink the shared block and run
the window cache's disk ``gc()`` even when a worker was killed mid-task.
"""

from __future__ import annotations

import os
import signal

import numpy as np
import pytest

import repro.engine.design as design_module
from repro.engine.cache import ProtocolConfig, ProtocolStore
from repro.engine.compiled import CompiledNet
from repro.engine.design import DesignEngine, MethodSpec
from repro.engine.shm import SharedPopulationArena
from repro.tech.library import RepeaterLibrary
from repro.tech.nodes import NODE_180NM

POPULATION = ProtocolConfig(num_nets=2, targets_per_net=2, seed=2005)


@pytest.fixture(scope="module")
def cases():
    return ProtocolStore().cases(POPULATION)


def _record_signature(result):
    """Per-record identity minus wall-clock noise (runtime_seconds)."""
    return [
        (
            record.net_name,
            record.method,
            record.target,
            record.feasible,
            record.total_width,
            record.delay,
            record.num_repeaters,
            record.fallback_used,
            record.technology,
        )
        for net in result.nets
        for record in net.records
    ]


# --------------------------------------------------------------------------- #
# arena round trip
# --------------------------------------------------------------------------- #
def test_arena_publish_attach_round_trip(cases):
    jobs = [(NODE_180NM, case) for case in cases]
    with SharedPopulationArena.publish(jobs) as arena:
        assert len(arena) == len(jobs)
        attached = SharedPopulationArena.attach(arena.name)
        try:
            for index, (technology, case) in enumerate(jobs):
                job = attached.job(index)
                assert job.technology.name == technology.name
                assert job.case == case
                reference = CompiledNet(case.net, case.candidates)
                assert job.compiled is not None
                assert job.compiled.positions == reference.positions
                assert job.compiled.num_levels == reference.num_levels
                for mine, theirs in zip(
                    job.compiled.intervals, reference.intervals
                ):
                    assert mine.upstream == theirs.upstream
                    assert mine.downstream == theirs.downstream
                    assert mine.resistance == theirs.resistance
                    assert mine.capacitance == theirs.capacitance
                    assert mine.delay_constant == theirs.delay_constant
                    assert np.array_equal(
                        mine.piece_resistance, theirs.piece_resistance
                    )
                    assert np.array_equal(
                        mine.piece_capacitance, theirs.piece_capacitance
                    )
                    assert np.array_equal(
                        mine.piece_half_capacitance, theirs.piece_half_capacitance
                    )
        finally:
            attached.close()


def test_arena_jobs_are_zero_copy_views(cases):
    jobs = [(NODE_180NM, case) for case in cases]
    with SharedPopulationArena.publish(jobs) as arena:
        attached = SharedPopulationArena.attach(arena.name)
        try:
            interval = attached.job(0).compiled.intervals[0]
            # Views into the shared block, not per-worker copies …
            assert interval.piece_resistance.base is not None
            assert interval.piece_capacitance.base is not None
            assert interval.piece_half_capacitance.base is not None
            # … and immutable: nobody can scribble on the population.
            assert not interval.piece_resistance.flags.writeable
            with pytest.raises((ValueError, RuntimeError)):
                interval.piece_resistance[0] = 1.0
        finally:
            attached.close()


def test_arena_without_compilation(cases):
    jobs = [(NODE_180NM, case) for case in cases]
    with SharedPopulationArena.publish(jobs, compile_nets=False) as arena:
        job = arena.job(0)
        assert job.compiled is None
        assert job.case == cases[0]


def test_arena_close_is_idempotent_and_unlinks(cases):
    arena = SharedPopulationArena.publish([(NODE_180NM, cases[0])])
    name = arena.name
    assert not arena.closed
    arena.close()
    arena.close()  # idempotent
    assert arena.closed
    with pytest.raises(ValueError):
        arena.name
    with pytest.raises(ValueError):
        arena.job(0)
    # The owner's close unlinked the OS segment: nobody can attach anymore.
    with pytest.raises(FileNotFoundError):
        SharedPopulationArena.attach(name)


# --------------------------------------------------------------------------- #
# engine pool path
# --------------------------------------------------------------------------- #
def _methods():
    return [
        MethodSpec.rip_method(),
        MethodSpec.dp_baseline("dp-g120", RepeaterLibrary.uniform(40.0, 400.0, 120.0)),
    ]


def test_pool_path_matches_serial_and_reaps_arena(cases):
    serial = DesignEngine(NODE_180NM, workers=0, store=ProtocolStore())
    golden = _record_signature(serial.design_population(cases, _methods()))
    with DesignEngine(NODE_180NM, workers=2, store=ProtocolStore()) as engine:
        result = engine.design_population(cases, _methods())
        assert _record_signature(result) == golden
        # The sweep's ``finally`` already closed and unlinked its arena.
        assert engine._arenas == []


def test_engine_close_unlinks_crashed_pool_arena(cases):
    """A worker killed mid-task must not leak the shared block.

    Every task SIGKILLs its worker, so the supervisor quarantines each net
    as ``poisoned`` across pool rebuilds instead of aborting the sweep; the
    sweep's ``finally`` still unlinks the arena, and anything that somehow
    survives is reaped by ``close()``/``__exit__``.  Simulated by SIGKILLing
    the worker from inside the (fork-inherited, monkeypatched) task function.
    """
    published = []
    real_publish = SharedPopulationArena.publish.__func__

    def capturing_publish(cls, jobs, **kwargs):
        arena = real_publish(cls, jobs, **kwargs)
        published.append(arena.name)
        return arena

    def suicide(*args, **kwargs):  # runs inside the worker process
        os.kill(os.getpid(), signal.SIGKILL)

    original_publish = SharedPopulationArena.publish
    original_case = design_module._design_case
    SharedPopulationArena.publish = classmethod(capturing_publish)
    design_module._design_case = suicide
    try:
        with DesignEngine(NODE_180NM, workers=2, store=ProtocolStore()) as engine:
            population = engine.design_population(cases, _methods())
            assert all(net.failure_kind == "poisoned" for net in population.nets)
            assert all(net.attempts == 2 for net in population.nets)
            assert engine.recovery.snapshot()["rebuilds"] >= 1
            # The sweep's ``finally`` reaped the arena despite the crashes.
            assert engine._arenas == []
        assert len(published) == 1
    finally:
        SharedPopulationArena.publish = original_publish
        design_module._design_case = original_case
    # The block is gone from the OS: re-attach must fail.
    with pytest.raises(FileNotFoundError):
        SharedPopulationArena.attach(published[0])


def test_engine_close_runs_cache_gc(tmp_path, cases):
    calls = []
    with DesignEngine(
        NODE_180NM,
        workers=0,
        store=ProtocolStore(),
        window_cache_dir=str(tmp_path / "wincache"),
    ) as engine:
        cache = engine.window_cache
        assert cache is not None and cache.cache_dir is not None
        original_gc = cache.gc
        cache.gc = lambda: calls.append(True) or original_gc()
        engine.design_population(cases[:1], _methods())
    assert calls  # __exit__ → close() applied the disk budgets


def test_engine_close_is_idempotent():
    engine = DesignEngine(NODE_180NM, workers=0, store=ProtocolStore())
    engine.close()
    engine.close()
