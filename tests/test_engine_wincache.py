"""Tests for the window-compilation cache and its RIP integration."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.rip import Rip, RipConfig
from repro.dp.candidates import window_candidates
from repro.engine.cache import ProtocolConfig, ProtocolStore
from repro.engine.compiled import CompiledNet
from repro.engine.design import DesignEngine, MethodSpec
from repro.engine.wincache import (
    WindowCompilationCache,
    dp_context_fingerprint,
    net_fingerprint,
    resolve_window_cache,
)
from repro.tech.library import RepeaterLibrary
from repro.utils.units import from_microns
from repro.utils.validation import ValidationError
from tests.conftest import build_uniform_net

TINY = ProtocolConfig(num_nets=2, targets_per_net=6, seed=13)


@pytest.fixture(scope="module")
def tiny_cases():
    return ProtocolStore().cases(TINY)


# --------------------------------------------------------------------------- #
# fingerprints
# --------------------------------------------------------------------------- #
def test_net_fingerprint_stable_and_value_based(tech):
    net_a = build_uniform_net(tech, length_um=9000.0)
    net_b = build_uniform_net(tech, length_um=9000.0)
    net_c = build_uniform_net(tech, length_um=9500.0)
    assert net_fingerprint(net_a) == net_fingerprint(net_a)
    assert net_fingerprint(net_a) == net_fingerprint(net_b)  # equal values share
    assert net_fingerprint(net_a) != net_fingerprint(net_c)


def test_dp_context_distinguishes_technology_and_pruning(tech):
    from repro.dp.pruning import PruningConfig
    from repro.tech.nodes import NODE_90NM

    base = dp_context_fingerprint(tech, PruningConfig())
    assert base == dp_context_fingerprint(tech, PruningConfig())
    assert base != dp_context_fingerprint(NODE_90NM, PruningConfig())
    assert base != dp_context_fingerprint(tech, PruningConfig(kernel="reference"))


# --------------------------------------------------------------------------- #
# cache layers
# --------------------------------------------------------------------------- #
def test_window_candidates_layer_matches_direct_call(zoned_net):
    cache = WindowCompilationCache()
    centers = [0.3 * zoned_net.total_length, 0.7 * zoned_net.total_length]
    pitch = from_microns(50.0)
    direct = tuple(window_candidates(zoned_net, centers, window=6, pitch=pitch))
    first = cache.window_candidates(zoned_net, centers, window=6, pitch=pitch)
    second = cache.window_candidates(zoned_net, centers, window=6, pitch=pitch)
    assert first == direct
    assert second is first  # served from cache
    stats = cache.statistics
    assert stats.candidate_hits == 1 and stats.candidate_misses == 1


def test_compiled_layer_reuses_and_matches_fresh_compilation(mixed_net):
    cache = WindowCompilationCache()
    positions = [1e-3, 2e-3, 3e-3]
    compiled = cache.compiled(mixed_net, positions)
    again = cache.compiled(mixed_net, positions)
    assert again is compiled
    fresh = CompiledNet(mixed_net, positions)
    assert compiled.positions == fresh.positions
    for a, b in zip(compiled.intervals, fresh.intervals):
        assert a.upstream == b.upstream and a.downstream == b.downstream
        assert np.array_equal(a.piece_resistance, b.piece_resistance)
        assert np.array_equal(a.piece_capacitance, b.piece_capacitance)


def test_frontier_layer_skips_factory_on_hit(mixed_net):
    cache = WindowCompilationCache()
    calls = []

    def factory():
        calls.append(1)
        return "frontier"

    for _ in range(3):
        result = cache.final_dp_result(mixed_net, "ctx", (10.0, 20.0), (1e-3,), factory)
        assert result == "frontier"
    assert len(calls) == 1
    assert cache.statistics.frontier_hits == 2
    # A different context must not share the entry.
    cache.final_dp_result(mixed_net, "other", (10.0, 20.0), (1e-3,), factory)
    assert len(calls) == 2


def test_lru_eviction_bounds_entries(mixed_net):
    cache = WindowCompilationCache(max_entries=2)
    for index in range(4):
        cache.compiled(mixed_net, [1e-3 * (index + 1)])
    stats = cache.statistics
    assert stats.entries <= 2
    assert stats.evictions == 2
    # The oldest key was evicted: looking it up again is a miss.
    cache.compiled(mixed_net, [1e-3])
    assert cache.statistics.compiled_misses == 5


def test_resolve_window_cache_modes():
    cache = WindowCompilationCache()
    assert resolve_window_cache(cache) is cache
    assert resolve_window_cache(False) is None
    assert isinstance(resolve_window_cache(None), WindowCompilationCache)
    assert isinstance(resolve_window_cache(True), WindowCompilationCache)
    with pytest.raises(ValidationError):
        WindowCompilationCache(max_entries=0)


# --------------------------------------------------------------------------- #
# RIP integration: bit-identical with the cache on vs. off
# --------------------------------------------------------------------------- #
def _outcome_key(result):
    return (
        result.feasible,
        result.fallback_used,
        result.total_width,
        result.delay,
        tuple(result.final_candidates),
        tuple(result.final_library.widths),
        tuple(result.solution.positions),
        tuple(result.solution.widths),
        result.states_generated,
    )


def test_rip_results_bit_identical_with_cache_on_and_off(tech, tiny_cases):
    rip_on = Rip(tech)
    rip_off = Rip(tech, window_cache=False)
    for case in tiny_cases:
        prepared_on = rip_on.prepare(case.net)
        prepared_off = rip_off.prepare(case.net)
        for target in case.targets:
            on = rip_on.run_prepared(prepared_on, target)
            off = rip_off.run_prepared(prepared_off, target)
            assert _outcome_key(on) == _outcome_key(off)
    stats = rip_on.window_cache.statistics
    assert stats.misses > 0  # the cache was really exercised
    assert rip_off.window_cache is None


def test_rip_repeated_target_hits_all_layers(tech, tiny_cases):
    case = tiny_cases[0]
    rip = Rip(tech)
    prepared = rip.prepare(case.net)
    target = case.targets[0]
    first = rip.run_prepared(prepared, target)
    before = rip.window_cache.statistics
    second = rip.run_prepared(prepared, target)
    after = rip.window_cache.statistics
    assert _outcome_key(first) == _outcome_key(second)
    assert after.candidate_hits > before.candidate_hits
    assert after.frontier_hits > before.frontier_hits


def test_rip_shared_cache_across_differing_configs_stays_correct(tech, tiny_cases):
    # Two inserters with different pruning share one cache; the dp context
    # keeps their frontier entries apart, so results match their private runs.
    from repro.dp.pruning import PruningConfig

    case = tiny_cases[0]
    shared = WindowCompilationCache()
    config_ref = RipConfig(pruning=PruningConfig(kernel="reference"))
    rip_a = Rip(tech, window_cache=shared)
    rip_b = Rip(tech, config_ref, window_cache=shared)
    solo_a = Rip(tech, window_cache=False)
    solo_b = Rip(tech, config_ref, window_cache=False)
    target = case.targets[1]
    assert _outcome_key(
        rip_a.run_prepared(rip_a.prepare(case.net), target)
    ) == _outcome_key(solo_a.run_prepared(solo_a.prepare(case.net), target))
    assert _outcome_key(
        rip_b.run_prepared(rip_b.prepare(case.net), target)
    ) == _outcome_key(solo_b.run_prepared(solo_b.prepare(case.net), target))


# --------------------------------------------------------------------------- #
# engine-level acceptance: sweep records identical, cache on vs. off
# --------------------------------------------------------------------------- #
def test_engine_sweep_records_identical_with_cache_on_and_off(tech, tiny_cases):
    methods = [
        MethodSpec.rip_method(),
        MethodSpec.dp_baseline("dp-g40", RepeaterLibrary.uniform_count(10.0, 40.0, 10)),
    ]

    def run(window_cache):
        engine = DesignEngine(
            tech, workers=0, store=ProtocolStore(), window_cache=window_cache
        )
        return [
            (r.net_name, r.method, r.target, r.feasible, r.total_width, r.delay)
            for r in engine.design_population(tiny_cases, methods).records()
        ]

    assert run(True) == run(False)
