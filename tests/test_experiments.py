"""Tests for the experiment harness (protocol, Table 1/2, Figure 7, reports).

The experiments are run with deliberately tiny populations so the whole file
stays fast; the full-size reproductions live in ``benchmarks/``.
"""

import pytest

from repro.experiments.figure7 import Figure7Config, run_figure7
from repro.experiments.protocol import (
    ExperimentProtocol,
    ProtocolConfig,
    mean,
    savings_percent,
    timing_targets,
)
from repro.experiments.report import (
    FIGURE7_HEADERS,
    TABLE2_HEADERS,
    figure7_rows,
    format_figure7,
    format_table,
    format_table1,
    format_table2,
    table1_headers,
    table1_rows,
    table2_rows,
    to_csv,
)
from repro.experiments.table1 import Table1Config, run_table1
from repro.experiments.table2 import Table2Config, run_table2
from repro.utils.validation import ValidationError


TINY = ProtocolConfig(num_nets=2, targets_per_net=5, seed=7)


@pytest.fixture(scope="module")
def table1_result():
    return run_table1(Table1Config(protocol=TINY))


@pytest.fixture(scope="module")
def table2_result():
    return run_table2(
        Table2Config(protocol=TINY, granularities=(40.0, 20.0))
    )


@pytest.fixture(scope="module")
def figure7_result():
    return run_figure7(Figure7Config(protocol=TINY, num_points=6))


# --------------------------------------------------------------------------- #
# protocol helpers
# --------------------------------------------------------------------------- #
def test_timing_targets_span_and_count():
    targets = timing_targets(1.0e-9, count=20, min_factor=1.05, max_factor=2.05)
    assert len(targets) == 20
    assert targets[0] == pytest.approx(1.05e-9)
    assert targets[-1] == pytest.approx(2.05e-9)
    assert list(targets) == sorted(targets)


def test_timing_targets_single_point():
    assert timing_targets(2.0e-9, count=1) == (pytest.approx(2.1e-9),)


def test_timing_targets_validation():
    with pytest.raises(ValidationError):
        timing_targets(1e-9, count=0)
    with pytest.raises(ValidationError):
        timing_targets(1e-9, min_factor=2.0, max_factor=1.0)


def test_savings_percent_regular_and_degenerate():
    assert savings_percent(100.0, 80.0) == pytest.approx(20.0)
    assert savings_percent(100.0, 120.0) == pytest.approx(-20.0)
    assert savings_percent(0.0, 0.0) == 0.0
    assert savings_percent(0.0, 10.0) == -100.0


def test_mean_empty_is_zero():
    assert mean([]) == 0.0
    assert mean([2.0, 4.0]) == 3.0


def test_protocol_builds_cases_with_tau_min(tech):
    protocol = ExperimentProtocol(TINY)
    cases = protocol.cases()
    assert len(cases) == TINY.num_nets
    for case in cases:
        assert case.tau_min > 0.0
        assert len(case.targets) == TINY.targets_per_net
        assert case.targets[0] == pytest.approx(1.05 * case.tau_min)
        assert len(case.candidates) > 0
    # cached
    assert protocol.cases() is cases


# --------------------------------------------------------------------------- #
# Table 1
# --------------------------------------------------------------------------- #
def test_table1_structure(table1_result):
    assert len(table1_result.rows) == TINY.num_nets
    assert table1_result.granularities == (10.0, 20.0, 40.0)
    for row in table1_result.rows:
        assert set(row.delta_max) == {10.0, 20.0, 40.0}
        assert 0 <= row.violations[10.0] <= TINY.targets_per_net
        assert row.rip_violations == 0, "RIP must always meet timing"


def test_table1_rip_never_loses_on_average_to_coarse_baselines(table1_result):
    # The coarser the baseline library, the larger RIP's mean saving.
    assert (
        table1_result.average_delta_mean[40.0]
        >= table1_result.average_delta_mean[20.0] - 1e-9
    )


def test_table1_delta_max_at_least_delta_mean(table1_result):
    for row in table1_result.rows:
        for granularity in (20.0, 40.0):
            assert row.delta_max[granularity] >= row.delta_mean[granularity] - 1e-9


def test_table1_report_formatting(table1_result):
    text = format_table1(table1_result)
    assert "dMax" in text and "Ave" in text
    rows = table1_rows(table1_result)
    headers = table1_headers(table1_result)
    assert len(rows) == len(table1_result.rows) + 1
    assert all(len(row) == len(headers) for row in rows)
    csv = to_csv(headers, rows)
    assert csv.count("\n") == len(rows) + 1


# --------------------------------------------------------------------------- #
# Table 2
# --------------------------------------------------------------------------- #
def test_table2_structure(table2_result):
    assert [row.granularity for row in table2_result.rows] == [40.0, 20.0]
    for row in table2_result.rows:
        assert row.library_size >= 10
        assert row.dp_runtime_seconds > 0.0
        assert row.rip_runtime_seconds > 0.0
        assert row.speedup == pytest.approx(
            row.dp_runtime_seconds / row.rip_runtime_seconds
        )


def test_table2_dp_runtime_grows_as_granularity_shrinks(table2_result):
    coarse, fine = table2_result.rows
    assert fine.dp_runtime_seconds > coarse.dp_runtime_seconds


def test_table2_savings_shrink_as_granularity_shrinks(table2_result):
    coarse, fine = table2_result.rows
    assert fine.average_saving_percent <= coarse.average_saving_percent + 1e-9


def test_table2_report_formatting(table2_result):
    text = format_table2(table2_result)
    assert "Speedup" in text
    rows = table2_rows(table2_result)
    assert all(len(row) == len(TABLE2_HEADERS) for row in rows)


# --------------------------------------------------------------------------- #
# Figure 7
# --------------------------------------------------------------------------- #
def test_figure7_structure(figure7_result):
    assert set(figure7_result.series) == {10.0, 40.0}
    for granularity, points in figure7_result.series.items():
        assert len(points) == 6
        factors = [point.target_factor for point in points]
        assert factors == sorted(factors)
        for point in points:
            if point.dp_width is not None and point.rip_width is not None:
                assert point.improvement_percent is not None


def test_figure7_zone_counts_sum(figure7_result):
    for granularity in figure7_result.series:
        infeasible, better, other = figure7_result.zone_counts(granularity)
        assert infeasible + better + other == 6


def test_figure7_report_formatting(figure7_result):
    text = format_figure7(figure7_result)
    assert "Figure 7" in text
    assert "zones" in text
    rows = figure7_rows(figure7_result, 40.0)
    assert all(len(row) == len(FIGURE7_HEADERS) for row in rows)


def test_figure7_net_index_out_of_range():
    with pytest.raises(ValidationError):
        run_figure7(Figure7Config(protocol=TINY, net_index=99, num_points=3))


# --------------------------------------------------------------------------- #
# generic report helpers
# --------------------------------------------------------------------------- #
def test_format_table_alignment():
    text = format_table(["a", "bb"], [[1, 2], [333, 4]])
    lines = text.splitlines()
    assert len(lines) == 4
    assert len(set(len(line) for line in lines)) == 1  # all lines equal width


def test_to_csv_escaping_free_content():
    csv = to_csv(["x", "y"], [[1, 2]])
    assert csv == "x,y\n1,2\n"
