"""Fault-injection tests: per-net isolation, pool-safe exceptions, teardown.

A population sweep must treat one net's crash the way it treats one net's
infeasibility: record it, drop the net's partial records, and keep
designing the siblings — serially and across the worker pool.  These tests
poison exactly one net of a small population and assert the blast radius:

* the sweep completes and reports the poisoned net in ``failures()`` with
  ``failure_kind == "crashed"``;
* every sibling net's records are bit-identical to an all-healthy sweep
  (runtime excluded — the only nondeterministic field);
* flat record counts and ``statistics.num_designs`` stay consistent;
* ``DesignEngine.close()`` leaks no shared-memory arenas.

Pooled variants rely on the ``fork`` start method: a class monkeypatched in
the parent before the pool spawns is inherited by the workers.  Worker-side
exceptions additionally have to survive the pickle channel — the
``ensure_pool_safe`` wrapper turns a non-picklable third-party exception
into a :class:`~repro.engine.design.WorkerTaskError` instead of letting the
pool die on an opaque pickling failure.
"""

from __future__ import annotations

import multiprocessing
import pickle

import pytest

from repro.analysis import sanitize
from repro.engine.cache import ProtocolConfig, ProtocolStore
from repro.engine.design import (
    DesignEngine,
    MethodSpec,
    WorkerTaskError,
    ensure_pool_safe,
)
import repro.engine.design as design_module
from repro.tech.library import RepeaterLibrary

TINY = ProtocolConfig(num_nets=3, targets_per_net=3, seed=13)

fork_only = pytest.mark.skipif(
    multiprocessing.get_start_method() != "fork",
    reason="pooled injection needs fork-inherited monkeypatches",
)


@pytest.fixture(scope="module")
def tiny_cases():
    return ProtocolStore().cases(TINY)


@pytest.fixture(scope="module")
def healthy(tiny_cases, tech):
    """The all-healthy oracle sweep every poisoned sweep is compared to."""
    engine = DesignEngine(tech, workers=0, store=ProtocolStore())
    try:
        return engine.design_population(tiny_cases, _methods())
    finally:
        engine.close()


def _methods():
    return [
        MethodSpec.rip_method(),
        MethodSpec.dp_baseline("dp-g40", RepeaterLibrary.uniform_count(10.0, 40.0, 10)),
    ]


def _record_key(record):
    return (
        record.technology,
        record.net_name,
        record.method,
        round(record.target, 18),
        record.feasible,
        record.total_width,
    )


class UnpicklableError(Exception):
    """Third-party-style exception that cannot cross a pickle channel."""

    def __init__(self, message, context):
        super().__init__(f"{message} ({context})")
        self.context = context  # two args, no __reduce__: pickle replay fails


def _poison(monkeypatch, net_name, error_factory):
    """Make RIP's prepare() raise for exactly one net, in-process or forked."""

    class PoisonedRip(design_module.Rip):
        def prepare(self, net):
            if net.name == net_name:
                raise error_factory(net.name)
            return super().prepare(net)

    monkeypatch.setattr(design_module, "Rip", PoisonedRip)


def _assert_isolated(population, healthy, poisoned_name, error_fragment):
    (failure,) = population.failures()
    assert failure.net_name == poisoned_name
    assert failure.failure_kind == "crashed"
    assert population.failures(kind="crashed") == (failure,)
    assert population.failures(kind="infeasible") == ()
    assert error_fragment in failure.error
    # A failed net carries no partial records, so the flat count, the
    # statistics and the table aggregations all agree.
    assert failure.records == ()
    assert len(population.records()) == population.statistics.num_designs

    healthy_by_net = {}
    for record in healthy.records():
        healthy_by_net.setdefault(record.net_name, []).append(_record_key(record))
    for net_result in population.nets:
        if net_result.net_name == poisoned_name:
            continue
        assert [
            _record_key(record) for record in net_result.records
        ] == healthy_by_net[net_result.net_name]


# --------------------------------------------------------------------------- #
# serial isolation
# --------------------------------------------------------------------------- #
def test_serial_crash_is_isolated_to_the_net(tiny_cases, healthy, tech, monkeypatch):
    poisoned = tiny_cases[1].net.name
    _poison(monkeypatch, poisoned, lambda name: ValueError(f"poisoned {name}"))
    engine = DesignEngine(tech, workers=0, store=ProtocolStore())
    try:
        population = engine.design_population(tiny_cases, _methods())
    finally:
        engine.close()
    _assert_isolated(population, healthy, poisoned, "ValueError")
    assert f"poisoned {poisoned}" in population.failures()[0].error


def test_serial_unpicklable_crash_is_isolated(tiny_cases, healthy, tech, monkeypatch):
    poisoned = tiny_cases[0].net.name
    _poison(monkeypatch, poisoned, lambda name: UnpicklableError("bad state", name))
    engine = DesignEngine(tech, workers=0, store=ProtocolStore())
    try:
        population = engine.design_population(tiny_cases, _methods())
    finally:
        engine.close()
    _assert_isolated(population, healthy, poisoned, "UnpicklableError")


def test_infeasible_and_crashed_are_distinguished(tiny_cases, tech, monkeypatch):
    from repro.core.rip import InfeasibleNetError

    infeasible_name = tiny_cases[0].net.name
    crashed_name = tiny_cases[1].net.name

    class SplitPoisonRip(design_module.Rip):
        def prepare(self, net):
            if net.name == infeasible_name:
                raise InfeasibleNetError(net.name, "coarse DP pass")
            if net.name == crashed_name:
                raise RuntimeError("cosmic ray")
            return super().prepare(net)

    monkeypatch.setattr(design_module, "Rip", SplitPoisonRip)
    engine = DesignEngine(tech, workers=0, store=ProtocolStore())
    try:
        population = engine.design_population(tiny_cases, _methods())
    finally:
        engine.close()
    assert {f.net_name for f in population.failures()} == {
        infeasible_name,
        crashed_name,
    }
    (infeasible,) = population.failures(kind="infeasible")
    (crashed,) = population.failures(kind="crashed")
    assert infeasible.net_name == infeasible_name
    assert crashed.net_name == crashed_name
    assert "RuntimeError" in crashed.error
    # Infeasibility keeps the original message shape (no type prefix).
    assert "RuntimeError" not in infeasible.error


# --------------------------------------------------------------------------- #
# pooled isolation
# --------------------------------------------------------------------------- #
@fork_only
def test_pooled_crash_is_isolated_to_the_net(tiny_cases, healthy, tech, monkeypatch):
    poisoned = tiny_cases[2].net.name
    _poison(monkeypatch, poisoned, lambda name: ValueError(f"poisoned {name}"))
    engine = DesignEngine(tech, workers=2, store=ProtocolStore())
    try:
        population = engine.design_population(tiny_cases, _methods())
    finally:
        engine.close()
    _assert_isolated(population, healthy, poisoned, "ValueError")
    assert population.statistics.workers == 2


@fork_only
def test_pooled_unpicklable_crash_is_isolated(tiny_cases, healthy, tech, monkeypatch):
    """The per-net catch runs worker-side, so the bad exception never needs
    to cross the pickle channel at all — only its description does."""
    poisoned = tiny_cases[1].net.name
    _poison(monkeypatch, poisoned, lambda name: UnpicklableError("bad state", name))
    engine = DesignEngine(tech, workers=2, store=ProtocolStore())
    try:
        population = engine.design_population(tiny_cases, _methods())
    finally:
        engine.close()
    _assert_isolated(population, healthy, poisoned, "UnpicklableError")


@fork_only
def test_pooled_infrastructure_failure_crosses_pool_as_wrapper(
    tiny_cases, tech, monkeypatch
):
    """An exception *outside* the per-net isolation (task plumbing) must
    reach the parent as a picklable WorkerTaskError, not a pickling crash."""

    def exploding_task(*args, **kwargs):
        raise UnpicklableError("infrastructure down", "worker")

    monkeypatch.setattr(design_module, "_design_any_case", exploding_task)
    engine = DesignEngine(tech, workers=2, store=ProtocolStore())
    try:
        with pytest.raises(WorkerTaskError) as excinfo:
            engine.design_population(tiny_cases, _methods())
    finally:
        engine.close()
    assert excinfo.value.kind == "UnpicklableError"
    assert "infrastructure down" in excinfo.value.message
    assert "UnpicklableError" in excinfo.value.details  # carries the traceback


@fork_only
def test_close_leaks_no_arenas_after_pooled_crash(tiny_cases, tech, monkeypatch):
    poisoned = tiny_cases[0].net.name
    _poison(monkeypatch, poisoned, lambda name: ValueError("boom"))
    monkeypatch.setenv(sanitize.ENV_VAR, "1")
    engine = DesignEngine(tech, workers=2, store=ProtocolStore())
    try:
        population = engine.design_population(tiny_cases, _methods())
        assert len(population.failures()) == 1
    finally:
        # With REPRO_SANITIZE on, close() itself asserts no shm arena of
        # this process outlived its sweep.
        engine.close()
    assert engine._arenas == []


# --------------------------------------------------------------------------- #
# pool-safe exception plumbing (unit level)
# --------------------------------------------------------------------------- #
def test_worker_task_error_roundtrips_pickle():
    error = WorkerTaskError("ValueError", "boom", details="trace...")
    clone = pickle.loads(pickle.dumps(error))
    assert isinstance(clone, WorkerTaskError)
    assert (clone.kind, clone.message, clone.details) == (
        "ValueError",
        "boom",
        "trace...",
    )
    assert "ValueError: boom" in str(clone)


def test_ensure_pool_safe_passes_picklable_through():
    original = ValueError("plain")
    assert ensure_pool_safe(original) is original


def test_ensure_pool_safe_wraps_unpicklable():
    try:
        raise UnpicklableError("bad state", "ctx")
    except UnpicklableError as caught:
        wrapped = ensure_pool_safe(caught)
    assert isinstance(wrapped, WorkerTaskError)
    assert wrapped.kind == "UnpicklableError"
    assert "bad state" in wrapped.message
    assert "test_fault_isolation" in wrapped.details  # traceback attached
    pickle.loads(pickle.dumps(wrapped))
