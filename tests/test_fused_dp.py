"""Property suite for the fused expand-traverse-prune DP core (ISSUE 5).

The fused core must produce **bit-for-bit** the frontiers of the staged
per-level path (its direct oracle) across seeded nets, libraries, pruning
strategies and tolerances — including the degenerate shapes: no candidate
locations, a single candidate, zero tolerances, and huge tolerances that
prune every level down to a single state.  Against ``kernel="reference"``
the fused core inherits the staged/vectorized tolerance semantics, so the
golden comparison mirrors ``tests/test_engine_equivalence.py``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.rip import Rip, RipConfig
from repro.dp.powerdp import PowerAwareDp
from repro.dp.pruning import PruningConfig
from repro.dp.vanginneken import DelayOptimalDp
from repro.engine.cache import ProtocolConfig, ProtocolStore
from repro.engine.kernels import DpScratch, shared_scratch
from repro.tech.library import RepeaterLibrary
from repro.tech.nodes import NODE_180NM

from tests.conftest import build_mixed_net, build_uniform_net

POPULATION = ProtocolConfig(num_nets=4, targets_per_net=4, seed=2005)


@pytest.fixture(scope="module")
def cases():
    return ProtocolStore().cases(POPULATION)


def _frontier_signature(result):
    return [
        (point.delay, point.total_width, point.solution.positions, point.solution.widths)
        for point in result.frontier.points
    ]


def _statistics_signature(result):
    stats = result.statistics
    return (stats.num_candidates, stats.library_size, stats.states_generated, stats.max_front_size)


@pytest.mark.parametrize(
    "strategy, granularity",
    [
        # The bucket-only strategy keeps huge fronts on fine libraries, so
        # it is exercised at coarse granularity only (cost, not coverage).
        ("full", 10.0),
        ("full", 40.0),
        ("full", 130.0),
        ("bucket", 130.0),
    ],
)
def test_power_dp_fused_bitwise_equal(cases, strategy, granularity):
    library = RepeaterLibrary.uniform(10.0, 400.0, granularity)
    pruning = PruningConfig(strategy=strategy)
    fused = PowerAwareDp(NODE_180NM, pruning=pruning, core="fused")
    staged = PowerAwareDp(NODE_180NM, pruning=pruning, core="staged")
    for case in cases:
        fast = fused.run(case.net, library, case.candidates)
        slow = staged.run(case.net, library, case.candidates)
        assert _frontier_signature(fast) == _frontier_signature(slow)
        assert _statistics_signature(fast) == _statistics_signature(slow)


def test_power_dp_fused_zero_tolerances(cases):
    """Zero tolerances: exact dominance, where all kernels must agree."""
    library = RepeaterLibrary.uniform(40.0, 400.0, 60.0)
    pruning = PruningConfig(delay_tolerance=0.0, width_tolerance=0.0)
    fused = PowerAwareDp(NODE_180NM, pruning=pruning, core="fused")
    staged = PowerAwareDp(NODE_180NM, pruning=pruning, core="staged")
    for case in cases[:2]:
        assert _frontier_signature(
            fused.run(case.net, library, case.candidates)
        ) == _frontier_signature(staged.run(case.net, library, case.candidates))


def test_power_dp_fused_all_pruned_levels(tech):
    """Huge tolerances collapse every level to a single surviving state."""
    net = build_uniform_net(tech)
    library = RepeaterLibrary.uniform(40.0, 400.0, 120.0)
    pruning = PruningConfig(delay_tolerance=10.0, width_tolerance=1e6)
    candidates = [i * 500.0e-6 for i in range(1, 20)]
    fused = PowerAwareDp(tech, pruning=pruning, core="fused")
    staged = PowerAwareDp(tech, pruning=pruning, core="staged")
    fast = fused.run(net, library, candidates)
    slow = staged.run(net, library, candidates)
    assert fast.statistics.max_front_size == 1
    assert _frontier_signature(fast) == _frontier_signature(slow)


def test_power_dp_fused_degenerate_candidates(tech):
    """No candidates (no DP levels) and a single candidate location."""
    net = build_mixed_net(tech)
    library = RepeaterLibrary.uniform(40.0, 400.0, 120.0)
    fused = PowerAwareDp(tech, core="fused")
    staged = PowerAwareDp(tech, core="staged")
    for candidates in ([], [net.total_length / 2.0]):
        fast = fused.run(net, library, candidates)
        slow = staged.run(net, library, candidates)
        assert _frontier_signature(fast) == _frontier_signature(slow)


def test_power_dp_fused_single_width_library(tech):
    """A one-width library: two branches per level, reduction degenerate."""
    net = build_uniform_net(tech)
    library = RepeaterLibrary.from_widths([120.0])
    candidates = [i * 1000.0e-6 for i in range(1, 10)]
    fused = PowerAwareDp(tech, core="fused")
    staged = PowerAwareDp(tech, core="staged")
    assert _frontier_signature(
        fused.run(net, library, candidates)
    ) == _frontier_signature(staged.run(net, library, candidates))


def test_power_dp_reference_kernel_forces_staged_core(tech):
    """The reference pruning loops are the oracle of both cores."""
    dp = PowerAwareDp(
        tech, pruning=PruningConfig(kernel="reference"), core="fused"
    )
    assert dp.core == "staged"
    with pytest.raises(Exception):
        PowerAwareDp(tech, core="nonsense")


def test_power_dp_fused_vs_reference_golden(cases):
    """Golden equivalence against the per-row reference loops."""
    library = RepeaterLibrary.uniform_count(10.0, 40.0, 10)
    fused = PowerAwareDp(NODE_180NM, core="fused")
    reference = PowerAwareDp(NODE_180NM, pruning=PruningConfig(kernel="reference"))
    for case in cases[:2]:
        assert _frontier_signature(
            fused.run(case.net, library, case.candidates)
        ) == _frontier_signature(reference.run(case.net, library, case.candidates))


def test_delay_optimal_fused_bitwise_equal(cases):
    library = RepeaterLibrary.uniform(10.0, 400.0, 10.0)
    fused = DelayOptimalDp(NODE_180NM, core="fused")
    staged = DelayOptimalDp(NODE_180NM, core="staged")
    assert fused.core == "fused" and staged.core == "staged"
    for case in cases:
        fast = fused.run(case.net, library, case.candidates)
        slow = staged.run(case.net, library, case.candidates)
        assert (fast.delay, fast.total_width, fast.positions, fast.widths) == (
            slow.delay,
            slow.total_width,
            slow.positions,
            slow.widths,
        )


def test_delay_optimal_fused_reference_kernel(tech):
    net = build_uniform_net(tech)
    library = RepeaterLibrary.uniform(40.0, 400.0, 40.0)
    candidates = [i * 400.0e-6 for i in range(1, 25)]
    fused = DelayOptimalDp(tech, core="fused")
    reference = DelayOptimalDp(tech, pruning_kernel="reference")
    assert reference.core == "staged"
    fast = fused.run(net, library, candidates)
    slow = reference.run(net, library, candidates)
    assert (fast.delay, fast.positions, fast.widths) == (slow.delay, slow.positions, slow.widths)


def test_scratch_reuse_across_nets_and_libraries(cases):
    """One arena shared across runs gives the same bits as fresh arenas."""
    shared = DpScratch(capacity=16)  # tiny: force geometric growth
    fused_shared = PowerAwareDp(NODE_180NM, core="fused", scratch=shared)
    for granularity in (130.0, 40.0):
        library = RepeaterLibrary.uniform(10.0, 400.0, granularity)
        for case in cases[:2]:
            fresh = PowerAwareDp(
                NODE_180NM, core="fused", scratch=DpScratch(capacity=1 << 15)
            )
            assert _frontier_signature(
                fused_shared.run(case.net, library, case.candidates)
            ) == _frontier_signature(fresh.run(case.net, library, case.candidates))
    assert shared.grows > 1  # the arena actually grew geometrically
    assert shared.capacity >= 16


def test_process_shared_scratch_is_a_singleton():
    assert shared_scratch() is shared_scratch()


def test_rip_flow_fused_bitwise_equal(cases):
    """The whole hybrid flow is identical under dp_core=fused/staged."""

    def design(core):
        rows = []
        rip = Rip(NODE_180NM, RipConfig(dp_core=core), window_cache=False)
        for case in cases[:2]:
            prepared = rip.prepare(case.net)
            for target in case.targets:
                result = rip.run_prepared(prepared, target)
                rows.append(
                    (
                        case.net.name,
                        target,
                        result.feasible,
                        result.fallback_used,
                        result.solution.positions,
                        result.solution.widths,
                        result.delay,
                        result.states_generated,
                    )
                )
        return rows

    assert design("fused") == design("staged")
