"""Cross-module integration tests.

These tie the layers together: the DP engines, the analytical solver, REFINE
and RIP must all agree with the single Elmore evaluator, and the headline
claim of the paper (RIP meets timing everywhere and saves power over
coarse-granularity DP baselines) must hold on a small seeded population.
"""

import pytest

from repro.analytical.width_solver import DualBisectionWidthSolver
from repro.core.refine import Refine
from repro.core.rip import Rip
from repro.core.solution import InsertionSolution
from repro.delay.elmore import buffered_net_delay, unbuffered_net_delay
from repro.delay.moments import discretize_net, ladder_moments
from repro.dp.candidates import uniform_candidates
from repro.dp.powerdp import PowerAwareDp
from repro.dp.vanginneken import DelayOptimalDp
from repro.net.generator import RandomNetGenerator
from repro.rc.simulate import simulate_ladder_step
from repro.tech.library import RepeaterLibrary
from repro.utils.units import from_microns


@pytest.fixture(scope="module")
def population(tech):
    return RandomNetGenerator(tech, seed=314).generate_many(4)


def test_rip_always_meets_timing_and_beats_coarse_dp_on_average(tech, population):
    """The paper's headline behaviour on a small seeded population."""
    rip = Rip(tech)
    dp = PowerAwareDp(tech)
    delay_dp = DelayOptimalDp(tech)
    fine_library = RepeaterLibrary.uniform(10.0, 400.0, 10.0)
    coarse_baseline = RepeaterLibrary.uniform_count(10.0, 40.0, 10)

    savings = []
    for net in population:
        candidates = uniform_candidates(net, from_microns(200.0))
        tau_min = delay_dp.minimum_delay(
            net, fine_library, uniform_candidates(net, from_microns(50.0))
        )
        baseline = dp.run(net, coarse_baseline, candidates)
        prepared = rip.prepare(net)
        for factor in (1.1, 1.4, 1.7, 2.0):
            target = factor * tau_min
            result = rip.run_prepared(prepared, target)
            assert result.feasible, f"RIP violated timing on {net.name} at {factor}x"
            point = baseline.best_for_delay(target)
            if point is not None and point.total_width > 0.0:
                savings.append(
                    (point.total_width - result.total_width) / point.total_width
                )
    assert savings, "expected at least one comparable design point"
    assert sum(savings) / len(savings) > 0.0


def test_refine_improves_or_matches_any_dp_start(tech, population):
    """REFINE never returns something more power-hungry than the continuous
    re-sizing of its own starting point, and always meets timing when the
    start could."""
    rip_dp = PowerAwareDp(tech)
    refine = Refine(tech)
    solver = DualBisectionWidthSolver(tech)
    library = RepeaterLibrary.paper_coarse()
    net = population[0]
    candidates = uniform_candidates(net, from_microns(200.0))
    frontier = rip_dp.run(net, library, candidates).frontier
    target = 1.3 * frontier.min_delay()
    start_point = frontier.best_for_delay(target)
    assert start_point is not None
    start = InsertionSolution.from_dp(start_point.solution)

    sized_only = solver.solve(net, list(start.positions), target, initial_widths=start.widths)
    refined = refine.run(net, start, target)
    assert refined.feasible
    assert refined.total_width <= sized_only.total_width + 1e-9
    assert refined.delay <= target * (1.0 + 1e-9)


def test_dp_solution_delays_match_transient_simulation_ordering(tech, population):
    """The Elmore objective ranks designs consistently with a SPICE-like
    transient simulation of the unbuffered nets (sanity of the substrate)."""
    net_a, net_b = population[0], population[1]
    elmore_a = unbuffered_net_delay(net_a, tech)
    elmore_b = unbuffered_net_delay(net_b, tech)
    measured = {}
    for name, net, elmore in (("a", net_a, elmore_a), ("b", net_b, elmore_b)):
        resistances, capacitances = discretize_net(net, tech, lumps_per_segment=20)
        response = simulate_ladder_step(
            resistances, capacitances, t_end=6.0 * elmore, steps=1500
        )
        measured[name] = response.delay_at(0.5)
    assert (measured["a"] < measured["b"]) == (elmore_a < elmore_b)


def test_moment_m1_matches_dp_wire_model(tech, population):
    """-m1 of the discretised unbuffered net equals its Elmore delay, which
    ties the moments substrate to the delay model the DP uses."""
    net = population[2]
    resistances, capacitances = discretize_net(net, tech, lumps_per_segment=60)
    m1 = ladder_moments(resistances, capacitances, order=1)[0]
    assert -m1 == pytest.approx(unbuffered_net_delay(net, tech), rel=0.02)


def test_power_dp_beats_or_matches_delay_dp_width_at_loose_targets(tech, population):
    """At loose targets the power DP must find designs no wider than the
    delay-optimal one (which ignores power entirely)."""
    dp = PowerAwareDp(tech)
    delay_dp = DelayOptimalDp(tech)
    library = RepeaterLibrary.uniform(40.0, 400.0, 40.0)
    net = population[3]
    candidates = uniform_candidates(net, from_microns(200.0))
    fastest = delay_dp.run(net, library, candidates)
    frontier = dp.run(net, library, candidates).frontier
    loose = frontier.best_for_delay(1.5 * fastest.delay)
    assert loose is not None
    assert loose.total_width <= fastest.total_width


def test_all_engines_agree_on_the_delay_of_a_shared_solution(tech, population):
    """A solution produced by any engine evaluates to the same delay through
    the public evaluator — there is exactly one delay model in the library."""
    net = population[1]
    library = RepeaterLibrary.uniform(40.0, 400.0, 80.0)
    candidates = uniform_candidates(net, from_microns(400.0))
    dp_point = PowerAwareDp(tech).run(net, library, candidates).frontier.points[0]
    vg_solution = DelayOptimalDp(tech).run(net, library, candidates)
    for positions, widths, claimed in (
        (dp_point.solution.positions, dp_point.solution.widths, dp_point.delay),
        (vg_solution.positions, vg_solution.widths, vg_solution.delay),
    ):
        assert buffered_net_delay(net, tech, positions, widths) == pytest.approx(claimed)
