"""Tests for random net generation and net JSON I/O."""

import pytest

from repro.net.generator import NetGenerationConfig, RandomNetGenerator
from repro.net.io import load_net, net_from_dict, net_to_dict, save_net
from repro.utils.units import from_microns
from repro.utils.validation import ValidationError


def test_generator_respects_paper_statistics(tech):
    config = NetGenerationConfig()
    generator = RandomNetGenerator(tech, config=config, seed=11)
    for net in generator.generate_many(20):
        assert config.min_segments <= net.num_segments <= config.max_segments
        for segment in net.segments:
            assert config.min_segment_length <= segment.length <= config.max_segment_length
            assert segment.layer in config.layers
        assert len(net.forbidden_zones) == 1
        zone = net.forbidden_zones[0]
        fraction = zone.length / net.total_length
        assert config.min_zone_fraction - 1e-9 <= fraction <= config.max_zone_fraction + 1e-9
        assert zone.start >= 0.0 and zone.end <= net.total_length + 1e-12


def test_generator_is_deterministic_per_seed(tech):
    nets_a = RandomNetGenerator(tech, seed=99).generate_many(3)
    nets_b = RandomNetGenerator(tech, seed=99).generate_many(3)
    for a, b in zip(nets_a, nets_b):
        assert a.total_length == pytest.approx(b.total_length)
        assert a.num_segments == b.num_segments
        assert a.forbidden_zones[0].start == pytest.approx(b.forbidden_zones[0].start)


def test_generator_different_seeds_differ(tech):
    a = RandomNetGenerator(tech, seed=1).generate()
    b = RandomNetGenerator(tech, seed=2).generate()
    assert a.total_length != pytest.approx(b.total_length)


def test_generator_zero_zones(tech):
    config = NetGenerationConfig(num_forbidden_zones=0)
    net = RandomNetGenerator(tech, config=config, seed=5).generate()
    assert net.forbidden_zones == ()


def test_generator_randomized_terminals(tech):
    config = NetGenerationConfig(randomize_terminal_widths=True)
    net = RandomNetGenerator(tech, config=config, seed=5).generate()
    assert config.min_driver_width <= net.driver_width <= config.max_driver_width
    assert config.min_receiver_width <= net.receiver_width <= config.max_receiver_width


def test_generator_rejects_unknown_layer(tech):
    config = NetGenerationConfig(layers=("metal42",))
    with pytest.raises(KeyError):
        RandomNetGenerator(tech, config=config, seed=5)


def test_generator_names(tech):
    nets = RandomNetGenerator(tech, seed=1).generate_many(3, prefix="x")
    assert [net.name for net in nets] == ["x1", "x2", "x3"]


def test_config_validation():
    with pytest.raises(ValidationError):
        NetGenerationConfig(min_segments=0)
    with pytest.raises(ValidationError):
        NetGenerationConfig(min_zone_fraction=0.5, max_zone_fraction=0.4)


def test_net_dict_round_trip(tech, zoned_net):
    data = net_to_dict(zoned_net)
    restored = net_from_dict(data)
    assert restored.name == zoned_net.name
    assert restored.num_segments == zoned_net.num_segments
    assert restored.total_length == pytest.approx(zoned_net.total_length)
    assert restored.total_resistance == pytest.approx(zoned_net.total_resistance)
    assert len(restored.forbidden_zones) == len(zoned_net.forbidden_zones)
    assert restored.driver_width == zoned_net.driver_width


def test_net_file_round_trip(tmp_path, tech):
    net = RandomNetGenerator(tech, seed=21).generate()
    path = tmp_path / "net.json"
    save_net(net, path)
    restored = load_net(path)
    assert restored.total_length == pytest.approx(net.total_length)
    assert restored.name == net.name
    assert [s.layer for s in restored.segments] == [s.layer for s in net.segments]


def test_net_from_dict_rejects_unknown_version(zoned_net):
    data = net_to_dict(zoned_net)
    data["format_version"] = 99
    with pytest.raises(ValueError):
        net_from_dict(data)


def test_generated_positions_are_meters_scale(tech):
    net = RandomNetGenerator(tech, seed=3).generate()
    # 4..10 segments of 1000..2500 um each
    assert from_microns(4000.0) <= net.total_length <= from_microns(25000.0)
