"""Tests for wire segments and forbidden zones."""

import pytest

from repro.net.segment import WireSegment
from repro.net.zones import ForbiddenZone, validate_zones
from repro.tech.wire import WireLayer
from repro.utils.validation import ValidationError


def test_segment_totals():
    segment = WireSegment(length=1e-3, resistance_per_meter=4.0e4, capacitance_per_meter=2.0e-10)
    assert segment.resistance == pytest.approx(40.0)
    assert segment.capacitance == pytest.approx(2.0e-13)


def test_segment_on_layer_copies_rc():
    layer = WireLayer("metal4", 4.0e4, 2.0e-10)
    segment = WireSegment.on_layer(layer, 2e-3)
    assert segment.layer == "metal4"
    assert segment.resistance_per_meter == layer.resistance_per_meter
    assert segment.capacitance_per_meter == layer.capacitance_per_meter


def test_segment_split_preserves_totals():
    segment = WireSegment(1e-3, 4.0e4, 2.0e-10, layer="metal4")
    head, tail = segment.split_at(0.3e-3)
    assert head.length + tail.length == pytest.approx(segment.length)
    assert head.resistance + tail.resistance == pytest.approx(segment.resistance)
    assert head.capacitance + tail.capacitance == pytest.approx(segment.capacitance)
    assert head.layer == tail.layer == "metal4"


def test_segment_split_rejects_boundary_offsets():
    segment = WireSegment(1e-3, 4.0e4, 2.0e-10)
    with pytest.raises(ValidationError):
        segment.split_at(0.0)
    with pytest.raises(ValidationError):
        segment.split_at(1e-3)


def test_segment_rejects_non_positive_length():
    with pytest.raises(ValidationError):
        WireSegment(0.0, 4.0e4, 2.0e-10)


def test_zone_basic_properties():
    zone = ForbiddenZone(1e-3, 3e-3)
    assert zone.length == pytest.approx(2e-3)
    assert zone.center == pytest.approx(2e-3)


def test_zone_contains_is_open_interval():
    zone = ForbiddenZone(1e-3, 3e-3)
    assert zone.contains(2e-3)
    assert not zone.contains(1e-3)
    assert not zone.contains(3e-3)
    assert not zone.contains(0.5e-3)


def test_zone_contains_with_tolerance():
    zone = ForbiddenZone(1e-3, 3e-3)
    assert not zone.contains(1e-3 + 1e-7, tolerance=1e-6)


def test_zone_overlap():
    a = ForbiddenZone(1e-3, 3e-3)
    b = ForbiddenZone(2.5e-3, 4e-3)
    c = ForbiddenZone(3e-3, 4e-3)
    assert a.overlaps(b)
    assert not a.overlaps(c)  # touching at a point is not an overlap


def test_zone_clamp_outside():
    zone = ForbiddenZone(1e-3, 3e-3)
    assert zone.clamp_outside(0.5e-3) == pytest.approx(0.5e-3)
    assert zone.clamp_outside(1.2e-3) == pytest.approx(1e-3)
    assert zone.clamp_outside(2.9e-3) == pytest.approx(3e-3)
    assert zone.clamp_outside(2e-3, prefer_downstream=True) == pytest.approx(3e-3)
    assert zone.clamp_outside(2e-3, prefer_downstream=False) == pytest.approx(1e-3)


def test_zone_rejects_inverted_interval():
    with pytest.raises(ValidationError):
        ForbiddenZone(2e-3, 1e-3)


def test_validate_zones_rejects_overlap():
    with pytest.raises(ValidationError):
        validate_zones([ForbiddenZone(0.0, 2e-3), ForbiddenZone(1e-3, 3e-3)], 5e-3)


def test_validate_zones_rejects_zone_past_net_end():
    with pytest.raises(ValidationError):
        validate_zones([ForbiddenZone(4e-3, 6e-3)], 5e-3)


def test_validate_zones_accepts_disjoint():
    validate_zones([ForbiddenZone(0.0, 1e-3), ForbiddenZone(2e-3, 3e-3)], 5e-3)
