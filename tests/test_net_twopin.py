"""Tests for the two-pin net model."""

import pytest

from repro.net.segment import WireSegment
from repro.net.twopin import TwoPinNet
from repro.net.zones import ForbiddenZone
from repro.utils.units import from_microns
from repro.utils.validation import ValidationError

from tests.conftest import build_mixed_net


def test_total_length_and_rc(mixed_net):
    expected_length = sum(segment.length for segment in mixed_net.segments)
    assert mixed_net.total_length == pytest.approx(expected_length)
    assert mixed_net.total_resistance == pytest.approx(
        sum(segment.resistance for segment in mixed_net.segments)
    )
    assert mixed_net.total_capacitance == pytest.approx(
        sum(segment.capacitance for segment in mixed_net.segments)
    )


def test_boundaries_monotone(mixed_net):
    boundaries = mixed_net.boundaries
    assert boundaries[0] == 0.0
    assert boundaries[-1] == pytest.approx(mixed_net.total_length)
    assert all(b2 > b1 for b1, b2 in zip(boundaries, boundaries[1:]))


def test_segment_index_at_boundary_depends_on_direction(mixed_net):
    boundary = float(mixed_net.boundaries[1])
    assert mixed_net.segment_index_at(boundary, downstream=True) == 1
    assert mixed_net.segment_index_at(boundary, downstream=False) == 0


def test_unit_rc_at_differs_across_layer_change(mixed_net):
    boundary = float(mixed_net.boundaries[1])  # metal4 -> metal5 transition
    r_down, c_down = mixed_net.unit_rc_at(boundary, downstream=True)
    r_up, c_up = mixed_net.unit_rc_at(boundary, downstream=False)
    assert (r_down, c_down) != (r_up, c_up)


def test_resistance_between_full_span(mixed_net):
    assert mixed_net.resistance_between(0.0, mixed_net.total_length) == pytest.approx(
        mixed_net.total_resistance
    )


def test_resistance_between_is_additive(mixed_net):
    mid = 0.37 * mixed_net.total_length
    total = mixed_net.resistance_between(0.0, mid) + mixed_net.resistance_between(
        mid, mixed_net.total_length
    )
    assert total == pytest.approx(mixed_net.total_resistance)


def test_capacitance_between_order_free(mixed_net):
    a, b = 0.2 * mixed_net.total_length, 0.8 * mixed_net.total_length
    assert mixed_net.capacitance_between(a, b) == pytest.approx(
        mixed_net.capacitance_between(b, a)
    )


def test_pieces_between_cover_interval(mixed_net):
    a, b = 0.1 * mixed_net.total_length, 0.9 * mixed_net.total_length
    pieces = mixed_net.pieces_between(a, b)
    assert sum(length for _, _, length in pieces) == pytest.approx(b - a)
    assert sum(r * length for r, _, length in pieces) == pytest.approx(
        mixed_net.resistance_between(a, b)
    )
    assert sum(c * length for _, c, length in pieces) == pytest.approx(
        mixed_net.capacitance_between(a, b)
    )


def test_pieces_between_empty_for_degenerate_interval(mixed_net):
    x = 0.5 * mixed_net.total_length
    assert mixed_net.pieces_between(x, x) == []


def test_pieces_between_split_at_layer_boundaries(mixed_net):
    pieces = mixed_net.pieces_between(0.0, mixed_net.total_length)
    assert len(pieces) == mixed_net.num_segments


def test_is_legal_position_excludes_terminals(mixed_net):
    assert not mixed_net.is_legal_position(0.0)
    assert not mixed_net.is_legal_position(mixed_net.total_length)
    assert mixed_net.is_legal_position(0.5 * mixed_net.total_length)


def test_is_legal_position_excludes_zone_interior(zoned_net):
    zone = zoned_net.forbidden_zones[0]
    assert not zoned_net.is_legal_position(zone.center)
    assert zoned_net.is_legal_position(zone.start)
    assert zoned_net.is_legal_position(zone.end)


def test_legalize_moves_out_of_zone(zoned_net):
    zone = zoned_net.forbidden_zones[0]
    inside = zone.start + 0.25 * zone.length
    legal = zoned_net.legalize(inside)
    assert zoned_net.is_legal_position(legal)
    assert legal in (pytest.approx(zone.start), pytest.approx(zone.end))


def test_legalize_clamps_to_net(zoned_net):
    assert 0.0 < zoned_net.legalize(-1.0) < zoned_net.total_length
    assert 0.0 < zoned_net.legalize(zoned_net.total_length + 1.0) < zoned_net.total_length


def test_legal_positions_respect_pitch_and_zones(zoned_net):
    pitch = from_microns(200.0)
    positions = zoned_net.legal_positions(pitch)
    assert positions, "expected at least one candidate"
    assert all(zoned_net.is_legal_position(p) for p in positions)
    zone = zoned_net.forbidden_zones[0]
    assert all(not zone.contains(p) for p in positions)
    steps = [round(p / pitch, 6) for p in positions]
    assert all(abs(step - round(step)) < 1e-6 for step in steps)


def test_zone_containing(zoned_net):
    zone = zoned_net.forbidden_zones[0]
    assert zoned_net.zone_containing(zone.center) is zone
    assert zoned_net.zone_containing(zone.start - 1e-6) is None


def test_with_zones_returns_new_net(mixed_net):
    zone = ForbiddenZone(1e-3, 2e-3)
    updated = mixed_net.with_zones([zone])
    assert updated.forbidden_zones == (zone,)
    assert mixed_net.forbidden_zones == ()


def test_describe_mentions_name_and_zone(zoned_net):
    text = zoned_net.describe()
    assert zoned_net.name in text
    assert "forbidden" in text


def test_net_requires_segments():
    with pytest.raises(ValidationError):
        TwoPinNet(segments=(), driver_width=100.0, receiver_width=50.0)


def test_net_rejects_zone_outside(tech):
    with pytest.raises(ValidationError):
        build_mixed_net(tech, zones=(ForbiddenZone(0.0, 1.0),))  # 1 m >> net length


def test_position_validation(mixed_net):
    with pytest.raises(ValidationError):
        mixed_net.resistance_between(-1.0, 1e-3)
    with pytest.raises(ValidationError):
        mixed_net.capacitance_between(0.0, mixed_net.total_length * 2.0)
