"""Tests for the repeater power models."""

import pytest

from repro.power.breakdown import per_repeater_breakdown
from repro.power.model import repeater_power, solution_power_report, total_width
from repro.utils.validation import ValidationError


def test_total_width_sums():
    assert total_width([10.0, 20.0, 30.0]) == pytest.approx(60.0)
    assert total_width([]) == 0.0


def test_total_width_rejects_negative():
    with pytest.raises(ValidationError):
        total_width([10.0, -1.0])


def test_repeater_power_matches_technology(tech):
    widths = [80.0, 120.0]
    assert repeater_power(tech, widths) == pytest.approx(tech.repeater_power(200.0))


def test_power_proportional_to_total_width(tech):
    # Eq. (4): power is affine (here linear) in the total width, so the split
    # of the same total across repeaters does not matter.
    assert repeater_power(tech, [200.0]) == pytest.approx(repeater_power(tech, [50.0] * 4))


def test_power_report_components(tech):
    report = solution_power_report(tech, [100.0, 100.0], wire_capacitance=2e-12)
    assert report.total_width == pytest.approx(200.0)
    assert report.repeater_power == pytest.approx(report.dynamic_power + report.leakage_power)
    assert report.total_power == pytest.approx(report.repeater_power + report.wire_dynamic_power)
    assert report.wire_dynamic_power > 0.0


def test_power_report_empty_solution(tech):
    report = solution_power_report(tech, [])
    assert report.total_width == 0.0
    assert report.repeater_power == 0.0


def test_per_repeater_breakdown_sums_to_total(tech):
    widths = [30.0, 70.0, 200.0]
    breakdown = per_repeater_breakdown(tech, widths)
    assert len(breakdown) == 3
    assert sum(item.total for item in breakdown) == pytest.approx(repeater_power(tech, widths))
    assert [item.index for item in breakdown] == [0, 1, 2]


def test_per_repeater_breakdown_scales_with_width(tech):
    small, large = per_repeater_breakdown(tech, [10.0, 100.0])
    assert large.dynamic_power == pytest.approx(10.0 * small.dynamic_power)
    assert large.leakage_power == pytest.approx(10.0 * small.leakage_power)
