"""Property-based tests (hypothesis) on the core data structures and models."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.delay.moments import ladder_moments
from repro.delay.stage import stage_delay, wire_elmore_delay
from repro.dp.frontier import DelayWidthFrontier, FrontierPoint
from repro.dp.state import DpSolution
from repro.net.segment import WireSegment
from repro.net.twopin import TwoPinNet
from repro.tech.library import RepeaterLibrary
from repro.tech.nodes import NODE_180NM
from repro.utils.pareto import prune_pareto_2d, prune_pareto_3d

TECH = NODE_180NM
REPEATER = TECH.repeater

positive_lengths = st.floats(min_value=1e-4, max_value=5e-3)
resistances_per_meter = st.floats(min_value=1e4, max_value=2e5)
capacitances_per_meter = st.floats(min_value=1e-10, max_value=3e-10)
widths = st.floats(min_value=1.0, max_value=400.0)

wire_pieces = st.lists(
    st.tuples(resistances_per_meter, capacitances_per_meter, positive_lengths),
    min_size=0,
    max_size=6,
)

segments_strategy = st.lists(
    st.builds(
        WireSegment,
        length=positive_lengths,
        resistance_per_meter=resistances_per_meter,
        capacitance_per_meter=capacitances_per_meter,
    ),
    min_size=1,
    max_size=6,
)


# --------------------------------------------------------------------------- #
# delay model properties
# --------------------------------------------------------------------------- #
@given(pieces=wire_pieces, load=st.floats(min_value=0.0, max_value=1e-12))
def test_wire_elmore_non_negative(pieces, load):
    assert wire_elmore_delay(pieces, load) >= 0.0


@given(pieces=wire_pieces, load=st.floats(min_value=0.0, max_value=1e-12))
def test_wire_elmore_monotone_in_load(pieces, load):
    base = wire_elmore_delay(pieces, load)
    heavier = wire_elmore_delay(pieces, load + 1e-13)
    assert heavier >= base


@given(
    pieces=wire_pieces,
    small=widths,
    load=st.floats(min_value=1e-15, max_value=1e-12),
)
def test_stage_delay_monotone_in_driver_width(pieces, small, load):
    large = small * 2.0
    assert stage_delay(REPEATER, large, pieces, load) <= stage_delay(
        REPEATER, small, pieces, load
    ) + 1e-18


@given(segments=segments_strategy, split=st.floats(min_value=0.05, max_value=0.95))
def test_net_rc_prefix_consistency(segments, split):
    net = TwoPinNet(segments=tuple(segments), driver_width=100.0, receiver_width=50.0)
    cut = split * net.total_length
    left_r = net.resistance_between(0.0, cut)
    right_r = net.resistance_between(cut, net.total_length)
    assert math.isclose(left_r + right_r, net.total_resistance, rel_tol=1e-9)
    left_c = net.capacitance_between(0.0, cut)
    right_c = net.capacitance_between(cut, net.total_length)
    assert math.isclose(left_c + right_c, net.total_capacitance, rel_tol=1e-9)


@given(segments=segments_strategy, a=st.floats(0.0, 1.0), b=st.floats(0.0, 1.0))
def test_net_pieces_between_match_integrals(segments, a, b):
    net = TwoPinNet(segments=tuple(segments), driver_width=100.0, receiver_width=50.0)
    low, high = sorted((a * net.total_length, b * net.total_length))
    if high - low < 1e-9:
        # Sub-nanometer intervals are below the piece-splitting tolerance and
        # physically meaningless; skip them.
        return
    pieces = net.pieces_between(low, high)
    assert math.isclose(
        sum(r * l for r, _, l in pieces),
        net.resistance_between(low, high),
        rel_tol=1e-9,
        abs_tol=1e-12,
    )
    assert sum(l for _, _, l in pieces) <= high - low + 1e-12


# --------------------------------------------------------------------------- #
# moments
# --------------------------------------------------------------------------- #
@given(
    values=st.lists(
        st.tuples(
            st.floats(min_value=1.0, max_value=1e4),
            st.floats(min_value=1e-15, max_value=1e-12),
        ),
        min_size=1,
        max_size=10,
    )
)
def test_ladder_moment_signs(values):
    resistances = [r for r, _ in values]
    capacitances = [c for _, c in values]
    m1, m2 = ladder_moments(resistances, capacitances, order=2)
    assert m1 < 0.0
    assert m2 > 0.0
    # the second moment of an RC circuit is bounded by m1^2
    assert m2 <= m1 * m1 * (1.0 + 1e-9)


# --------------------------------------------------------------------------- #
# Pareto pruning properties
# --------------------------------------------------------------------------- #
points_2d = st.lists(
    st.tuples(st.floats(0.0, 100.0), st.floats(0.0, 100.0), st.integers(0, 10**6)),
    max_size=60,
)


@given(points=points_2d)
def test_pareto_2d_front_is_mutually_non_dominating(points):
    front = prune_pareto_2d(points)
    for i, a in enumerate(front):
        for j, b in enumerate(front):
            if i == j:
                continue
            strictly_dominates = a[0] <= b[0] and a[1] <= b[1] and (a[0] < b[0] or a[1] < b[1])
            assert not strictly_dominates


@given(points=points_2d)
def test_pareto_2d_every_input_dominated_by_some_front_point(points):
    front = prune_pareto_2d(points)
    for point in points:
        assert any(f[0] <= point[0] + 1e-12 and f[1] <= point[1] + 1e-12 for f in front)


points_3d = st.lists(
    st.tuples(
        st.floats(0.0, 10.0), st.floats(0.0, 10.0), st.floats(0.0, 10.0), st.integers(0, 10)
    ),
    max_size=40,
)


@given(points=points_3d)
def test_pareto_3d_coverage(points):
    front = prune_pareto_3d(points)
    for point in points:
        assert any(
            f[0] <= point[0] + 1e-12 and f[1] <= point[1] + 1e-12 and f[2] <= point[2] + 1e-12
            for f in front
        )


# --------------------------------------------------------------------------- #
# frontier and library properties
# --------------------------------------------------------------------------- #
frontier_points = st.lists(
    st.tuples(st.floats(1e-10, 1e-8), st.floats(0.0, 1000.0)), min_size=1, max_size=40
)


@given(raw=frontier_points, factor=st.floats(0.5, 3.0))
def test_frontier_best_for_delay_is_feasible_and_cheapest(raw, factor):
    points = [
        FrontierPoint(d, w, DpSolution.from_lists([], [], delay=d, total_width=w))
        for d, w in raw
    ]
    frontier = DelayWidthFrontier(points)
    target = factor * raw[0][0]
    best = frontier.best_for_delay(target)
    feasible = [(d, w) for d, w in raw if d <= target]
    if best is None:
        assert not feasible
    else:
        assert best.delay <= target
        assert best.total_width <= min(w for _, w in feasible) + 1e-9


@given(
    min_width=st.floats(1.0, 50.0),
    granularity=st.floats(1.0, 50.0),
    count=st.integers(1, 30),
)
def test_library_uniform_count_properties(min_width, granularity, count):
    library = RepeaterLibrary.uniform_count(min_width, granularity, count)
    assert len(library) == count
    assert library.min_width >= min_width - 1e-9
    assert list(library) == sorted(library)


@given(width=st.floats(0.5, 900.0), granularity=st.floats(1.0, 50.0))
def test_round_to_grid_properties(width, granularity):
    library = RepeaterLibrary((10.0,))
    rounded = library.round_to_grid(width, granularity)
    assert rounded >= granularity - 1e-9
    assert abs(rounded / granularity - round(rounded / granularity)) < 1e-6
    assert abs(rounded - width) <= granularity * 0.5 + granularity + 1e-9
