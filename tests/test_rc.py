"""Tests for the general RC-network substrate (tree Elmore, moments, MNA)."""

import pytest

from repro.delay.moments import ladder_moments
from repro.rc.elmore import tree_downstream_capacitance, tree_elmore_delays
from repro.rc.moments import tree_elmore_from_moments, tree_moments
from repro.rc.network import RCTree
from repro.rc.simulate import simulate_ladder_step, simulate_tree_step, threshold_crossing
from repro.utils.validation import ValidationError


def _balanced_tree():
    """Root -> two branches of two nodes each, with distinct RC values."""
    tree = RCTree("root")
    tree.add_capacitance("root", 1e-15)
    tree.add_node("a1", "root", 100.0, 1e-13)
    tree.add_node("a2", "a1", 150.0, 2e-13)
    tree.add_node("b1", "root", 200.0, 1.5e-13)
    tree.add_node("b2", "b1", 250.0, 0.5e-13)
    return tree


def test_tree_structure_queries():
    tree = _balanced_tree()
    assert tree.root == "root"
    assert set(tree.leaves()) == {"a2", "b2"}
    assert tree.parent("a2") == "a1"
    assert tree.parent("root") is None
    assert tree.children("root") == ("a1", "b1")
    assert len(tree) == 5
    assert "a1" in tree and "zz" not in tree


def test_tree_path_resistance():
    tree = _balanced_tree()
    assert tree.path_resistance("a2") == pytest.approx(250.0)
    assert tree.path_resistance("b2") == pytest.approx(450.0)
    assert tree.path_resistance("root") == 0.0


def test_downstream_capacitance():
    tree = _balanced_tree()
    downstream = tree_downstream_capacitance(tree)
    assert downstream["a2"] == pytest.approx(2e-13)
    assert downstream["a1"] == pytest.approx(3e-13)
    assert downstream["root"] == pytest.approx(tree.total_capacitance())


def test_tree_elmore_hand_computed():
    tree = _balanced_tree()
    delays = tree_elmore_delays(tree, source_resistance=50.0)
    total_cap = tree.total_capacitance()
    expected_a1 = 50.0 * total_cap + 100.0 * 3e-13
    expected_a2 = expected_a1 + 150.0 * 2e-13
    assert delays["a1"] == pytest.approx(expected_a1)
    assert delays["a2"] == pytest.approx(expected_a2)


def test_tree_elmore_monotone_along_path():
    tree = _balanced_tree()
    delays = tree_elmore_delays(tree, source_resistance=10.0)
    assert delays["root"] <= delays["a1"] <= delays["a2"]
    assert delays["root"] <= delays["b1"] <= delays["b2"]


def test_tree_moments_match_direct_elmore():
    tree = _balanced_tree()
    from_moments = tree_elmore_from_moments(tree, source_resistance=75.0)
    direct = tree_elmore_delays(tree, source_resistance=75.0)
    for node in tree.nodes:
        assert from_moments[node] == pytest.approx(direct[node])


def test_tree_moments_second_order_positive():
    tree = _balanced_tree()
    moments = tree_moments(tree, order=2, source_resistance=75.0)
    for node in tree.nodes:
        if node == tree.root:
            continue
        assert moments[node][0] < 0.0
        assert moments[node][1] > 0.0


def test_ladder_constructor_matches_ladder_moments():
    resistances = [100.0, 200.0, 300.0]
    capacitances = [1e-13, 2e-13, 3e-13]
    tree = RCTree.ladder(resistances, capacitances)
    delays = tree_elmore_delays(tree)
    assert delays["n3"] == pytest.approx(-ladder_moments(resistances, capacitances, 1)[0])


def test_tree_rejects_duplicate_node():
    tree = RCTree("root")
    tree.add_node("a", "root", 1.0, 1e-15)
    with pytest.raises(ValidationError):
        tree.add_node("a", "root", 1.0, 1e-15)


def test_tree_rejects_unknown_parent():
    tree = RCTree("root")
    with pytest.raises(ValidationError):
        tree.add_node("a", "ghost", 1.0, 1e-15)


# --------------------------------------------------------------------------- #
# MNA transient simulation vs. analytical estimates
# --------------------------------------------------------------------------- #
def test_single_rc_simulation_matches_theory():
    r, c = 1000.0, 1e-12
    response = simulate_ladder_step([r], [c], t_end=10 * r * c, steps=4000)
    measured = response.delay_at(0.5)
    assert measured == pytest.approx(0.6931 * r * c, rel=0.02)


def test_ladder_simulation_bounded_by_elmore():
    # The 50% delay of an RC ladder is below its Elmore delay but within ~2x.
    resistances = [50.0] * 20
    capacitances = [2e-13] * 20
    elmore = -ladder_moments(resistances, capacitances, 1)[0]
    response = simulate_ladder_step(resistances, capacitances, t_end=10 * elmore, steps=3000)
    measured = response.delay_at(0.5)
    assert 0.3 * elmore < measured < elmore


def test_tree_simulation_agrees_with_elmore_ordering():
    # Strongly asymmetric tree: the "slow" branch has much more RC than the
    # "fast" one, so both Elmore and the transient simulation must rank the
    # fast sink ahead of the slow one.
    tree = RCTree("root")
    tree.add_node("fast", "root", 100.0, 1e-13)
    tree.add_node("slow1", "root", 800.0, 4e-13)
    tree.add_node("slow2", "slow1", 900.0, 5e-13)
    source_resistance = 500.0
    delays = tree_elmore_delays(tree, source_resistance=source_resistance)
    assert delays["fast"] < delays["slow2"]
    t_end = 10 * max(delays.values())
    fast = simulate_tree_step(
        tree, "fast", source_resistance=source_resistance, t_end=t_end, steps=2000
    ).delay_at(0.5)
    slow = simulate_tree_step(
        tree, "slow2", source_resistance=source_resistance, t_end=t_end, steps=2000
    ).delay_at(0.5)
    assert fast < slow


def test_threshold_crossing_interpolates():
    times = [0.0, 1.0, 2.0]
    voltages = [0.0, 0.4, 0.8]
    assert threshold_crossing(times, voltages, 0.6) == pytest.approx(1.5)


def test_threshold_crossing_requires_reaching_threshold():
    with pytest.raises(ValueError):
        threshold_crossing([0.0, 1.0], [0.0, 0.1], 0.5)


def test_simulation_validates_inputs():
    with pytest.raises(ValidationError):
        simulate_ladder_step([], [], t_end=1.0)
    with pytest.raises(ValidationError):
        simulate_ladder_step([1.0], [1.0, 2.0], t_end=1.0)
    tree = _balanced_tree()
    with pytest.raises(ValidationError):
        simulate_tree_step(tree, "nope", source_resistance=10.0, t_end=1.0)
