"""Warm-started REFINE: agreement with cold start, continuations, persistence.

The contract under test (ISSUE 3 / the design-state layer):

* warm-started width solves agree with cold solves within the solver
  tolerance at fixed positions, and the warm path can **never** change a
  feasibility verdict (the feasibility pre-check is shared);
* across the seed population and all targets, warm-started RIP reaches the
  same REFINE feasibility verdicts as cold-started RIP, with the analytical
  solutions agreeing within tolerance (REFINE's move trajectory may diverge
  by a few percent of total width — ``keep_best`` bounds it and the final
  discrete DP pass absorbs it);
* byte-identical repeated queries are answered from the per-net
  :class:`RefineContinuation` record verbatim (idempotent service
  semantics), and the records round-trip through the
  :class:`RefineRecordStore` disk tier bit-for-bit.
"""

from __future__ import annotations

import json

import pytest

from repro.analytical.width_solver import DualBisectionWidthSolver
from repro.core.refine import (
    REFINE_RECORD_FORMAT_VERSION,
    Refine,
    RefineConfig,
    RefineContinuation,
    RefineRecordStore,
    RefineSeed,
    refine_result_from_payload,
    refine_result_to_payload,
)
from repro.core.rip import Rip, RipConfig, refine_context_fingerprint
from repro.core.solution import InsertionSolution
from repro.delay.elmore import unbuffered_net_delay
from repro.engine.cache import ProtocolConfig, ProtocolStore
from repro.tech.nodes import NODE_90NM

from tests.conftest import build_uniform_net

POPULATION = ProtocolConfig(num_nets=4, targets_per_net=8, seed=2005)


@pytest.fixture(scope="module")
def population():
    return ProtocolStore().cases(POPULATION)


# --------------------------------------------------------------------------- #
# solver level: warm lambda seeding at fixed positions
# --------------------------------------------------------------------------- #
def _fixed_problem(tech):
    net = build_uniform_net(tech, length_um=12000.0, segments=6, name="warm")
    positions = [0.25 * net.total_length, 0.5 * net.total_length, 0.75 * net.total_length]
    target = 0.8 * unbuffered_net_delay(net, tech)
    return net, positions, target


def test_solver_warm_seed_matches_cold_within_tolerance(tech):
    net, positions, target = _fixed_problem(tech)
    solver = DualBisectionWidthSolver(tech)
    cold = solver.solve(net, positions, target)
    assert cold.feasible
    warm = solver.solve(
        net,
        positions,
        target,
        initial_widths=cold.widths,
        initial_lambda=cold.lagrange_multiplier,
    )
    assert warm.feasible
    # Both solves pin delay to the target within the solver tolerance.
    assert abs(warm.delay - target) <= 2e-4 * target
    assert abs(cold.delay - target) <= 2e-4 * target
    assert warm.total_width == pytest.approx(cold.total_width, rel=5e-3)
    # The warm bracket is tight: far fewer evaluations than the cold solve.
    assert warm.iterations <= cold.iterations


def test_solver_garbage_seed_falls_back_to_cold(tech):
    net, positions, target = _fixed_problem(tech)
    solver = DualBisectionWidthSolver(tech)
    cold = solver.solve(net, positions, target)
    for seed in (1e-300, 1e300, cold.lagrange_multiplier * 1e9):
        warm = solver.solve(net, positions, target, initial_lambda=seed)
        assert warm.feasible == cold.feasible
        assert warm.total_width == pytest.approx(cold.total_width, rel=5e-3)


def test_solver_warm_seed_never_flips_infeasible_verdict(tech):
    net, positions, _ = _fixed_problem(tech)
    solver = DualBisectionWidthSolver(tech)
    impossible = 1e-12
    cold = solver.solve(net, positions, impossible)
    warm = solver.solve(net, positions, impossible, initial_lambda=1.0)
    assert not cold.feasible and not warm.feasible


def test_solver_warm_seed_preserves_min_width_regime(tech):
    # A very loose target is met even by minimum widths; the warm path must
    # reach the same (cold-detected) min-width verdict via its fallback.
    net, positions, _ = _fixed_problem(tech)
    loose = 50.0 * unbuffered_net_delay(net, tech)
    solver = DualBisectionWidthSolver(tech)
    cold = solver.solve(net, positions, loose)
    warm = solver.solve(net, positions, loose, initial_lambda=1e-6)
    assert cold.feasible and warm.feasible
    assert all(width == tech.repeater.min_width for width in cold.widths)
    assert warm.widths == cold.widths


# --------------------------------------------------------------------------- #
# population level: warm vs. cold RIP across all targets
# --------------------------------------------------------------------------- #
def _sweep(tech, cases, warm):
    config = RipConfig(refine=RefineConfig(warm_start=warm))
    rows = []
    for case in cases:
        rip = Rip(tech, config, window_cache=False)
        prepared = rip.prepare(case.net)
        for target in case.targets:
            result = rip.run_prepared(prepared, target)
            rows.append((case.net.name, target, result))
    return rows


def test_warm_and_cold_refine_agree_across_population(tech, population):
    cold = _sweep(tech, population, warm=False)
    warm = _sweep(tech, population, warm=True)
    assert len(cold) == len(warm)
    for (name_c, target_c, res_c), (name_w, target_w, res_w) in zip(cold, warm):
        assert (name_c, target_c) == (name_w, target_w)
        # The continuation never changes feasibility verdicts — neither
        # REFINE's nor the final discrete result's.
        assert bool(res_c.refined.feasible) == bool(res_w.refined.feasible)
        assert res_c.feasible == res_w.feasible
        if res_c.refined.feasible:
            # Analytical agreement: delay within solver tolerance bands,
            # total width within the keep_best-bounded trajectory envelope.
            assert abs(res_c.refined.delay - res_w.refined.delay) <= 5e-3 * target_c
            assert res_w.refined.total_width == pytest.approx(
                res_c.refined.total_width, rel=0.10
            )
        if res_c.feasible:
            # The discrete final pass absorbs the analytical drift almost
            # always entirely; allow one fine-grid step of slack.
            assert res_w.total_width == pytest.approx(res_c.total_width, rel=0.05)


def test_warm_repeated_sweep_is_bit_identical_and_memoized(tech, population):
    case = population[0]
    rip = Rip(tech, window_cache=False)
    prepared = rip.prepare(case.net)
    first = [rip.run_prepared(prepared, target) for target in case.targets]
    before = rip.continuation_statistics
    assert before.exact_hits == 0
    assert before.seeded_runs + before.cold_runs == len(case.targets)
    second = [rip.run_prepared(prepared, target) for target in case.targets]
    after = rip.continuation_statistics
    assert after.exact_hits == len(case.targets)
    for a, b in zip(first, second):
        assert a.refined is b.refined  # served from the record, not re-run
        assert a.total_width == b.total_width
        assert a.delay == b.delay
        assert a.solution.positions == b.solution.positions
        assert a.solution.widths == b.solution.widths
    rip.reset_continuations()
    assert rip.continuation_statistics.runs == 0


# --------------------------------------------------------------------------- #
# continuation record unit behaviour
# --------------------------------------------------------------------------- #
def _result_for(tech, net, target, count=2):
    positions = [net.total_length * (i + 1) / (count + 1) for i in range(count)]
    initial = InsertionSolution.from_lists(positions, [160.0] * count)
    return initial, Refine(tech).run(net, initial, target)


def test_continuation_seeds_from_nearest_feasible_target(tech):
    net = build_uniform_net(tech, length_um=14000.0, segments=7, name="cont")
    base = 0.8 * unbuffered_net_delay(net, tech)
    continuation = RefineContinuation()
    for factor in (1.0, 1.5):
        initial, result = _result_for(tech, net, factor * base)
        assert result.feasible
        continuation.record(factor * base, initial, result)
    # An infeasible record must never seed.
    initial, infeasible = _result_for(tech, net, 1e-12)
    assert not infeasible.feasible
    continuation.record(1e-12, initial, infeasible)

    seed = continuation.seed_for(1.02 * base)
    assert isinstance(seed, RefineSeed)
    near = continuation.exact(base, _result_for(tech, net, base)[0])
    assert near is not None  # the exact record still resolves
    # Nearest feasible target is base (not 1.5*base, not the infeasible one).
    assert seed.lagrange_multiplier == near.lagrange_multiplier


def test_continuation_lru_bound_and_exports(tech):
    net = build_uniform_net(tech, length_um=9000.0, name="lru")
    target = 0.9 * unbuffered_net_delay(net, tech)
    initial, result = _result_for(tech, net, target)
    continuation = RefineContinuation(max_entries=2)
    for index in range(4):
        continuation.record(target * (1.0 + index), initial, result)
    assert len(continuation) == 2
    entries = continuation.export_records()
    assert len(entries) == 2
    clone = RefineContinuation()
    for entry in entries:
        clone.record(
            entry["target"],
            InsertionSolution.from_lists(
                entry["initial_positions"], entry["initial_widths"]
            ),
            refine_result_from_payload(entry["result"]),
        )
    assert clone.exact(entries[0]["target"], initial) is not None


def test_refine_result_payload_roundtrip_is_exact(tech):
    net = build_uniform_net(tech, length_um=11000.0, name="payload")
    target = 0.85 * unbuffered_net_delay(net, tech)
    _, result = _result_for(tech, net, target, count=3)
    clone = refine_result_from_payload(
        json.loads(json.dumps(refine_result_to_payload(result)))
    )
    assert clone.solution.positions == result.solution.positions
    assert clone.solution.widths == result.solution.widths
    assert clone.lagrange_multiplier == result.lagrange_multiplier
    assert clone.delay == float(result.delay)
    assert clone.total_width == result.total_width
    assert clone.feasible == bool(result.feasible)
    assert clone.width_history == tuple(float(w) for w in result.width_history)


# --------------------------------------------------------------------------- #
# RefineRecordStore: the disk tier
# --------------------------------------------------------------------------- #
def _store_with_records(tech, tmp_path):
    net = build_uniform_net(tech, length_um=13000.0, segments=5, name="disk")
    target = 0.8 * unbuffered_net_delay(net, tech)
    initial, result = _result_for(tech, net, target)
    continuation = RefineContinuation()
    continuation.record(target, initial, result)
    context = refine_context_fingerprint(tech, RefineConfig())
    store = RefineRecordStore(tmp_path, context)
    store.save("net-fp", continuation)
    return store, continuation, target, initial


def test_refine_store_roundtrip_bit_for_bit(tech, tmp_path):
    store, continuation, target, initial = _store_with_records(tech, tmp_path)
    loaded = RefineContinuation()
    assert store.load("net-fp", loaded) == 1
    original = continuation.exact(target, initial)
    clone = loaded.exact(target, initial)
    assert clone.solution.positions == original.solution.positions
    assert clone.solution.widths == original.solution.widths
    assert clone.lagrange_multiplier == original.lagrange_multiplier
    assert clone.delay == float(original.delay)


def test_refine_store_evicts_corrupted_and_stale_files(tech, tmp_path):
    store, _, _, _ = _store_with_records(tech, tmp_path)
    [path] = list(tmp_path.glob("refine-*.json"))

    path.write_text("{broken", encoding="utf-8")
    assert store.load("net-fp", RefineContinuation()) == 0
    assert not path.exists()  # evicted, never trusted

    path.write_text(
        json.dumps(
            {
                "format_version": REFINE_RECORD_FORMAT_VERSION - 1,
                "net": "net-fp",
                "context": "x",
                "records": [],
            }
        ),
        encoding="utf-8",
    )
    assert store.load("net-fp", RefineContinuation()) == 0
    assert not path.exists()


def _record_payload(store, continuation, fingerprint, target, initial):
    """The exact recorded result a survivor file must keep reproducing."""
    loaded = RefineContinuation()
    assert store.load(fingerprint, loaded) == 1
    result = loaded.exact(target, initial)
    assert result is not None
    return refine_result_to_payload(result)


def test_refine_store_disk_budget_evicts_lru_files(tech, tmp_path):
    import os
    import time

    net = build_uniform_net(tech, length_um=13000.0, segments=5, name="budget")
    target = 0.8 * unbuffered_net_delay(net, tech)
    initial, result = _result_for(tech, net, target)
    continuation = RefineContinuation()
    continuation.record(target, initial, result)

    store = RefineRecordStore(tmp_path, "ctx", max_files=2)
    base = time.time() - 100.0
    for index, fingerprint in enumerate(["net-a", "net-b", "net-c"]):
        store.save(fingerprint, continuation)
        # Pin a deterministic LRU order (oldest = net-a).
        os.utime(store._path(fingerprint), times=(base + index, base + index))
    store.save("net-d", continuation)

    # Each save beyond the budget evicted the least recently used file
    # (net-a on the third save, net-b on the fourth); the survivors are
    # untouched and still load bit-for-bit.
    assert store.evictions == 2
    assert len(list(tmp_path.glob("refine-*.json"))) == 2
    assert store.load("net-a", RefineContinuation()) == 0
    assert store.load("net-b", RefineContinuation()) == 0
    expected = refine_result_to_payload(result)
    for survivor in ("net-c", "net-d"):
        assert _record_payload(store, continuation, survivor, target, initial) == expected


def test_refine_store_load_marks_files_recently_used(tech, tmp_path):
    import os
    import time

    net = build_uniform_net(tech, length_um=12000.0, segments=4, name="touch")
    target = 0.85 * unbuffered_net_delay(net, tech)
    initial, result = _result_for(tech, net, target)
    continuation = RefineContinuation()
    continuation.record(target, initial, result)

    store = RefineRecordStore(tmp_path, "ctx", max_files=2)
    base = time.time() - 100.0
    for index, fingerprint in enumerate(["net-a", "net-b"]):
        store.save(fingerprint, continuation)
        os.utime(store._path(fingerprint), times=(base + index, base + index))
    # Reading net-a promotes it: the next eviction takes net-b instead.
    assert store.load("net-a", RefineContinuation()) == 1
    store.save("net-c", continuation)
    assert store.load("net-b", RefineContinuation()) == 0
    expected = refine_result_to_payload(result)
    for survivor in ("net-a", "net-c"):
        assert _record_payload(store, continuation, survivor, target, initial) == expected


def test_refine_store_byte_budget_keeps_newest(tech, tmp_path):
    net = build_uniform_net(tech, length_um=11000.0, segments=4, name="bytes")
    target = 0.9 * unbuffered_net_delay(net, tech)
    initial, result = _result_for(tech, net, target)
    continuation = RefineContinuation()
    continuation.record(target, initial, result)

    import os
    import time

    # A budget smaller than a single record still keeps the newest file.
    store = RefineRecordStore(tmp_path, "ctx", max_bytes=1)
    store.save("net-a", continuation)
    assert len(list(tmp_path.glob("refine-*.json"))) == 1
    stale = time.time() - 50.0
    os.utime(store._path("net-a"), times=(stale, stale))
    store.save("net-b", continuation)
    files = list(tmp_path.glob("refine-*.json"))
    assert len(files) == 1
    assert store.load("net-b", RefineContinuation()) == 1
    assert store.load("net-a", RefineContinuation()) == 0


def test_refine_store_budget_validation(tmp_path):
    from repro.utils.validation import ValidationError

    with pytest.raises(ValidationError):
        RefineRecordStore(tmp_path, "ctx", max_files=0)
    with pytest.raises(ValidationError):
        RefineRecordStore(tmp_path, "ctx", max_bytes=0)


def test_refine_context_distinguishes_technology_and_config(tech):
    base = refine_context_fingerprint(tech, RefineConfig())
    assert base == refine_context_fingerprint(tech, RefineConfig())
    assert base != refine_context_fingerprint(NODE_90NM, RefineConfig())
    assert base != refine_context_fingerprint(tech, RefineConfig(warm_start=False))
    assert base != refine_context_fingerprint(tech, RefineConfig(movement_step=25e-6))


def test_rip_refine_records_survive_process_restart_simulation(tech, tmp_path, population):
    """Fresh Rip + fresh cache on the same directory reproduce the sweep
    bit-for-bit with REFINE answered from the disk records."""
    from repro.engine.wincache import WindowCompilationCache

    case = population[0]

    def sweep():
        rip = Rip(tech, window_cache=WindowCompilationCache(cache_dir=tmp_path))
        prepared = rip.prepare(case.net)
        outcomes = [
            (
                target,
                result.feasible,
                result.total_width,
                result.delay,
                result.solution.positions,
                result.solution.widths,
                result.states_generated,
            )
            for target, result in (
                (t, rip.run_prepared(prepared, t)) for t in case.targets
            )
        ]
        return outcomes, rip.continuation_statistics

    cold, cold_stats = sweep()
    warm, warm_stats = sweep()
    assert warm == cold  # bit-identical across the simulated restart
    assert cold_stats.exact_hits == 0
    assert warm_stats.exact_hits == len(case.targets)  # all served from disk
