"""Fault-injection and transparency tests for ``REPRO_SANITIZE=1`` (ISSUE 7).

The sanitizer must (a) catch a kernel that emits a dominated state, a NaN
delay, aliased scratch views, or a leaked shm arena — naming the rule and
the level in its diagnostic — and (b) be **bit-transparent** when nothing is
injected: identical frontiers/records with and without the mode, with the
check counters threaded through :class:`EngineStatistics` (including across
the worker pool's pickle channel).
"""

from __future__ import annotations

import pickle

import numpy as np
import pytest

import repro.dp.powerdp as powerdp_module
from repro.analysis import sanitize
from repro.analysis.sanitize import SanitizeError
from repro.dp.powerdp import PowerAwareDp
from repro.dp.vanginneken import DelayOptimalDp
from repro.engine.cache import ProtocolConfig, ProtocolStore
from repro.engine.design import DesignEngine, MethodSpec
from repro.engine.shm import SharedPopulationArena
from repro.tech.library import RepeaterLibrary
from repro.tech.nodes import NODE_180NM

from tests.conftest import build_uniform_net

LIBRARY = RepeaterLibrary.uniform(40.0, 400.0, 120.0)
CANDIDATES = [i * 1000.0e-6 for i in range(1, 8)]
POPULATION = ProtocolConfig(num_nets=1, targets_per_net=1, seed=2005)


@pytest.fixture
def sanitized(monkeypatch):
    monkeypatch.setenv(sanitize.ENV_VAR, "1")


@pytest.fixture(scope="module")
def tiny_cases():
    return ProtocolStore().cases(POPULATION)


def _run_power(tech):
    net = build_uniform_net(tech)
    return PowerAwareDp(tech, core="fused").run(net, LIBRARY, CANDIDATES)


def _frontier_signature(result):
    return [
        (point.delay, point.total_width, point.solution.positions, point.solution.widths)
        for point in result.frontier.points
    ]


def _record_signature(result):
    return [
        (
            record.net_name,
            record.method,
            record.target,
            record.feasible,
            record.total_width,
            record.delay,
            record.num_repeaters,
        )
        for net in result.nets
        for record in net.records
    ]


def _inject_into_fused_level(mutate):
    """Wrap the real fused kernel, applying ``mutate`` to the first level's
    surviving ``(caps, delays, widths, keep)`` front."""
    real = powerdp_module.fused_level
    state = {"armed": True}

    def wrapper(scratch, interval, caps, delays, widths, **kwargs):
        out = real(scratch, interval, caps, delays, widths, **kwargs)
        if not state["armed"]:
            return out
        state["armed"] = False
        out_caps, out_delays, out_widths, keep, m, count = out
        return (*mutate(out_caps, out_delays, out_widths, keep), m, count)

    return wrapper


# --------------------------------------------------------------------------- #
# Fault injection through the real DP driver


def test_injected_dominated_state_names_rule_and_level(tech, sanitized, monkeypatch):
    def duplicate_last_row(caps, delays, widths, keep):
        return (
            np.append(caps, caps[-1]),
            np.append(delays, delays[-1]),
            np.append(widths, widths[-1]),
            np.append(keep, keep[-1]),
        )

    monkeypatch.setattr(
        powerdp_module, "fused_level", _inject_into_fused_level(duplicate_last_row)
    )
    with pytest.raises(SanitizeError) as excinfo:
        _run_power(tech)
    error = excinfo.value
    assert error.rule == "dominance"
    assert "level 0" in error.where
    assert "PowerAwareDp(fused)" in error.where


def test_injected_nan_delay_names_rule_and_level(tech, sanitized, monkeypatch):
    def poison_delay(caps, delays, widths, keep):
        poisoned = delays.copy()
        poisoned[0] = np.nan
        return caps, poisoned, widths, keep

    monkeypatch.setattr(
        powerdp_module, "fused_level", _inject_into_fused_level(poison_delay)
    )
    with pytest.raises(SanitizeError) as excinfo:
        _run_power(tech)
    error = excinfo.value
    assert error.rule == "nan-guard"
    assert "level 0" in error.where
    assert "'delays'" in error.detail


def test_injected_aliased_views_are_caught(tech, sanitized, monkeypatch):
    def alias_delays_to_caps(caps, delays, widths, keep):
        return caps, caps, widths, keep

    monkeypatch.setattr(
        powerdp_module, "fused_level", _inject_into_fused_level(alias_delays_to_caps)
    )
    with pytest.raises(SanitizeError) as excinfo:
        _run_power(tech)
    assert excinfo.value.rule == "scratch-overlap"


def test_nothing_injected_is_bit_transparent(tech, monkeypatch):
    monkeypatch.delenv(sanitize.ENV_VAR, raising=False)
    plain_power = _frontier_signature(_run_power(tech))
    net = build_uniform_net(tech)
    plain_2d = DelayOptimalDp(tech).run(net, LIBRARY, CANDIDATES)

    monkeypatch.setenv(sanitize.ENV_VAR, "1")
    before = sanitize.statistics()
    assert _frontier_signature(_run_power(tech)) == plain_power
    checked_2d = DelayOptimalDp(tech).run(net, LIBRARY, CANDIDATES)
    assert (checked_2d.delay, checked_2d.assignments) == (
        plain_2d.delay,
        plain_2d.assignments,
    )
    delta = sanitize.statistics().since(before)
    assert delta.checks_run > 0
    assert delta.violations == 0


# --------------------------------------------------------------------------- #
# Direct check semantics


def test_check_front_dominance_flags_handcrafted_front(sanitized):
    caps = np.array([1.0, 2.0])
    delays = np.array([4.0, 5.0])  # row 1: higher cap AND higher delay
    widths = np.array([3.0, 3.0])
    with pytest.raises(SanitizeError, match="dominance"):
        sanitize.check_front_dominance(
            caps, delays, widths, strategy="bucket", width_tolerance=1e-9, where="test"
        )
    # A genuine trade-off front (delay falls as cap rises) passes.
    sanitize.check_front_dominance(
        caps,
        np.array([5.0, 4.0]),
        widths,
        strategy="full",
        width_tolerance=1e-9,
        where="test",
    )


def test_check_front_dominance_2d(sanitized):
    with pytest.raises(SanitizeError, match="dominance"):
        sanitize.check_front_dominance_2d(
            np.array([1.0, 2.0]), np.array([4.0, 5.0]), where="test"
        )
    sanitize.check_front_dominance_2d(
        np.array([1.0, 2.0]), np.array([5.0, 4.0]), where="test"
    )


def test_check_scratch_views_and_finite(sanitized):
    buffer = np.zeros(8)
    with pytest.raises(SanitizeError, match="scratch-overlap"):
        sanitize.check_scratch_views("test", a=buffer[:4], b=buffer[2:6])
    sanitize.check_scratch_views("test", a=buffer[:4], b=buffer[4:])
    with pytest.raises(SanitizeError, match="nan-guard"):
        sanitize.check_finite("test", values=np.array([0.0, np.inf]))


def test_sanitize_error_survives_pickling():
    error = SanitizeError("dominance", "net 'n' level 3", "1 dominated state")
    clone = pickle.loads(pickle.dumps(error))
    assert isinstance(clone, SanitizeError)
    assert (clone.rule, clone.where, clone.detail) == (
        error.rule,
        error.where,
        error.detail,
    )


# --------------------------------------------------------------------------- #
# Shared-memory leak accounting


def test_leaked_arena_is_reported_then_cleared(tiny_cases, sanitized):
    jobs = [(NODE_180NM, case) for case in tiny_cases]
    arena = SharedPopulationArena.publish(jobs)
    name = arena.name
    try:
        assert name in sanitize.live_shm()
        with pytest.raises(SanitizeError) as excinfo:
            sanitize.check_shm_leaks("test")
        assert excinfo.value.rule == "shm-leak"
        assert name in excinfo.value.detail
    finally:
        arena.close()
    assert name not in sanitize.live_shm()
    sanitize.check_shm_leaks("test")  # clean after the publisher unlinks


def test_arena_publish_untracked_when_disabled(tiny_cases, monkeypatch):
    monkeypatch.delenv(sanitize.ENV_VAR, raising=False)
    with SharedPopulationArena.publish(
        [(NODE_180NM, case) for case in tiny_cases]
    ) as arena:
        assert arena.name not in sanitize.live_shm()


# --------------------------------------------------------------------------- #
# Engine statistics threading


def _methods():
    return [
        MethodSpec.dp_baseline("dp", RepeaterLibrary.uniform_count(10.0, 40.0, 4))
    ]


def test_engine_serial_threads_sanitizer_statistics(tiny_cases, monkeypatch):
    monkeypatch.delenv(sanitize.ENV_VAR, raising=False)
    with DesignEngine(NODE_180NM, workers=0, store=ProtocolStore()) as engine:
        plain = engine.design_population(tiny_cases, _methods())
    assert plain.statistics.sanitizer is None

    monkeypatch.setenv(sanitize.ENV_VAR, "1")
    with DesignEngine(NODE_180NM, workers=0, store=ProtocolStore()) as engine:
        checked = engine.design_population(tiny_cases, _methods())
    stats = checked.statistics.sanitizer
    assert stats is not None
    assert stats.checks_run > 0
    assert stats.violations == 0
    assert _record_signature(checked) == _record_signature(plain)


def test_engine_parallel_threads_sanitizer_statistics(tiny_cases, sanitized):
    # Worker-side deltas must survive the pool's pickle channel, and the
    # engine's own close() must find no leaked arena afterwards.
    with DesignEngine(NODE_180NM, workers=2, store=ProtocolStore()) as engine:
        result = engine.design_population(tiny_cases, _methods())
    stats = result.statistics.sanitizer
    assert stats is not None
    assert stats.checks_run > 0
    assert stats.violations == 0
