"""Tests for the design service: schema, tenants, batcher, HTTP daemon.

The load-bearing assertion is the oracle gate every fast path in this repo
carries: the records ≥32 concurrent HTTP clients receive are bit-identical
(runtime excluded) to a direct serial ``DesignEngine.design_population``
sweep of the same requests — including while one request's net is poisoned
with an injected exception, which must surface only in that request's
response.
"""

from __future__ import annotations

import http.client
import json
import math
from concurrent.futures import ThreadPoolExecutor
from dataclasses import asdict

import pytest

import repro.engine.design as design_module
from repro.engine.cache import ProtocolConfig, ProtocolStore
from repro.engine.design import DesignEngine
from repro.net.io import net_to_dict
from repro.service.batcher import MicroBatcher, _Waiter, group_requests
from repro.service.schema import (
    MAX_TARGETS,
    RequestError,
    parse_request,
)
from repro.service.server import serve_in_background
from repro.service.tenants import TenantBudgets, TenantLimitError, TenantRegistry

TINY = ProtocolConfig(num_nets=4, targets_per_net=2, seed=13)


@pytest.fixture(scope="module")
def tiny_cases():
    return ProtocolStore().cases(TINY)


@pytest.fixture(scope="module")
def payloads(tiny_cases):
    """One wire payload per population net (tenant/methods at defaults)."""
    return [
        {
            "tenant": "teamA",
            "technology": "cmos180",
            "methods": ["rip"],
            "net": net_to_dict(case.net),
            "targets": list(case.targets),
            "tau_min": case.tau_min,
        }
        for case in tiny_cases
    ]


def _engine(tech, **kwargs):
    return DesignEngine(tech, workers=0, store=ProtocolStore(), **kwargs)


def _post(port, path, payload, timeout=120.0):
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=timeout)
    try:
        conn.request(
            "POST", path, body=json.dumps(payload),
            headers={"Content-Type": "application/json"},
        )
        response = conn.getresponse()
        return response.status, response.read()
    finally:
        conn.close()


def _get(port, path):
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=30.0)
    try:
        conn.request("GET", path)
        response = conn.getresponse()
        return response.status, json.loads(response.read())
    finally:
        conn.close()


def _strip_runtime(record_dict):
    return {k: v for k, v in record_dict.items() if k != "runtime_seconds"}


def _oracle_records(tech, requests):
    """Direct serial sweep of the same parsed requests: digest -> records."""
    engine = _engine(tech)
    try:
        by_digest = {}
        unique = []
        for request in requests:
            if request.digest not in by_digest:
                by_digest[request.digest] = None
                unique.append(request)
        population = engine.design_population(
            [request.case for request in unique], unique[0].methods()
        )
        for request, net_result in zip(unique, population.nets):
            by_digest[request.digest] = [
                _strip_runtime(asdict(record)) for record in net_result.records
            ]
        return by_digest
    finally:
        engine.close()


# --------------------------------------------------------------------------- #
# schema
# --------------------------------------------------------------------------- #
def test_parse_request_digest_is_stable(payloads):
    first = parse_request(payloads[0])
    again = parse_request(json.loads(json.dumps(payloads[0])))
    assert first.digest == again.digest
    assert first.case.targets == again.case.targets
    other = parse_request({**payloads[0], "tenant": "teamB"})
    assert other.digest != first.digest


def test_parse_request_defaults(payloads):
    bare = {"net": payloads[0]["net"], "targets": payloads[0]["targets"]}
    request = parse_request(bare)
    assert request.tenant == "public"
    assert request.technology_name == "cmos180"
    assert request.method_names == ("rip",)
    assert request.case.tau_min == min(request.case.targets)
    assert len(request.case.candidates) > 0


@pytest.mark.parametrize(
    "mutation, fragment",
    [
        (lambda p: "not an object", "JSON object"),
        (lambda p: {**p, "tenant": "../etc"}, "tenant"),
        (lambda p: {**p, "technology": "cmos3"}, "unknown technology"),
        (lambda p: {**p, "methods": ["quantum"]}, "unknown method"),
        (lambda p: {**p, "methods": ["rip", "rip"]}, "unique"),
        (lambda p: {**p, "methods": []}, "non-empty"),
        (lambda p: {k: v for k, v in p.items() if k != "net"}, "'net'"),
        (lambda p: {**p, "targets": []}, "targets"),
        (lambda p: {**p, "targets": [float("nan")]}, "finite"),
        (lambda p: {**p, "targets": [-1.0e-9]}, "finite"),
        (lambda p: {**p, "targets": [1.0e-9] * (MAX_TARGETS + 1)}, "at most"),
        (lambda p: {**p, "tau_min": math.inf}, "finite"),
        (lambda p: {**p, "candidate_pitch": 10.0}, "no legal repeater"),
        (lambda p: {**p, "net": {"broken": True}}, "malformed net"),
    ],
)
def test_parse_request_rejections(payloads, mutation, fragment):
    with pytest.raises(RequestError) as excinfo:
        parse_request(mutation(dict(payloads[0])))
    assert fragment in str(excinfo.value)


# --------------------------------------------------------------------------- #
# tenants
# --------------------------------------------------------------------------- #
def test_tenant_budgets_partition_equally(tmp_path):
    budgets = TenantBudgets(
        max_tenants=4,
        cache_root=str(tmp_path),
        total_entries=400,
        total_files=100,
        total_bytes=4000,
    )
    spec = budgets.spec_for("teamA")
    assert spec.max_entries == 100
    assert spec.max_files == 25
    assert spec.max_bytes == 1000
    assert spec.cache_dir.endswith("tenants/teamA/wincache")
    assert budgets.spec_for("teamB").cache_dir != spec.cache_dir


def test_tenant_registry_caps_admission():
    registry = TenantRegistry(budgets=TenantBudgets(max_tenants=2))
    spec_a = registry.admit("teamA")
    assert registry.admit("teamA") is spec_a  # idempotent
    registry.admit("teamB")
    with pytest.raises(TenantLimitError):
        registry.admit("teamC")
    assert registry.tenants == ("teamA", "teamB")


def test_tenant_usage_reports_disk(tech, tmp_path):
    registry = TenantRegistry(
        budgets=TenantBudgets(max_tenants=2, cache_root=str(tmp_path))
    )
    registry.admit("teamA")
    engine = _engine(tech)
    try:
        usage = registry.usage(engine)
    finally:
        engine.close()
    assert usage["teamA"]["disk_files"] == 0
    assert usage["teamA"]["max_files"] > 0


# --------------------------------------------------------------------------- #
# batcher grouping (pure)
# --------------------------------------------------------------------------- #
def test_group_requests_splits_axes_and_dedups(payloads):
    a1 = parse_request(payloads[0])
    a2 = parse_request(payloads[0])  # identical => same digest
    b = parse_request(payloads[1])
    other_tenant = parse_request({**payloads[0], "tenant": "teamB"})
    other_method = parse_request({**payloads[1], "methods": ["dp-g40"]})
    waiters = [
        _Waiter(request=request, future=None)
        for request in (a1, a2, b, other_tenant, other_method)
    ]
    groups = group_requests(waiters)
    assert len(groups) == 3  # (teamA, rip), (teamB, rip), (teamA, dp-g40)
    teama_rip = next(
        g for g in groups if g.tenant == "teamA" and g.method_names == ("rip",)
    )
    assert len(teama_rip.waiters) == 2  # a1/a2 collapsed, b separate
    assert len(teama_rip.waiters[a1.digest]) == 2


# --------------------------------------------------------------------------- #
# HTTP daemon
# --------------------------------------------------------------------------- #
def test_healthz_metrics_and_routing(tech):
    bg = serve_in_background(_engine(tech))
    try:
        assert _get(bg.port, "/healthz") == (200, {"status": "ok"})
        status, metrics = _get(bg.port, "/metrics")
        assert status == 200
        assert metrics["queue_depth"] == 0
        assert metrics["engine"]["workers"] == 0
        assert "store" in metrics and "tenants" in metrics
        assert _get(bg.port, "/nope")[0] == 404
        status, _body = _post(bg.port, "/healthz", {})
        assert status == 404
        conn = http.client.HTTPConnection("127.0.0.1", bg.port, timeout=30)
        conn.request("GET", "/design")
        assert conn.getresponse().status == 405
        conn.close()
    finally:
        bg.stop()


def test_malformed_requests_get_400(tech, payloads):
    bg = serve_in_background(_engine(tech))
    try:
        status, body = _post(bg.port, "/design", {"targets": [1e-9]})
        assert status == 400
        assert "net" in json.loads(body)["error"]
        conn = http.client.HTTPConnection("127.0.0.1", bg.port, timeout=30)
        conn.request("POST", "/design", body=b"not json{",
                     headers={"Content-Length": "9"})
        assert conn.getresponse().status == 400
        conn.close()
    finally:
        bg.stop()


def test_tenant_capacity_is_429(tech, payloads):
    bg = serve_in_background(
        _engine(tech), budgets=TenantBudgets(max_tenants=1)
    )
    try:
        status, _body = _post(bg.port, "/design", payloads[0])
        assert status == 200
        status, body = _post(
            bg.port, "/design", {**payloads[0], "tenant": "teamB"}
        )
        assert status == 429
        assert "capacity" in json.loads(body)["error"]
    finally:
        bg.stop()


def test_rebuilding_pool_degrades_to_503_with_retry_after(tech, payloads):
    """While the engine's worker pool is being rebuilt after a collapse, new
    design requests are shed with 503 + Retry-After instead of queueing
    behind a pool that cannot serve them; /metrics exposes the breaker."""
    engine = _engine(tech)
    bg = serve_in_background(engine)
    try:
        engine.recovery.set_rebuilding(True)
        conn = http.client.HTTPConnection("127.0.0.1", bg.port, timeout=30)
        conn.request(
            "POST", "/design", body=json.dumps(payloads[0]),
            headers={"Content-Type": "application/json"},
        )
        response = conn.getresponse()
        body = response.read()
        assert response.status == 503
        assert response.getheader("Retry-After") == "1"
        assert "rebuilding" in json.loads(body)["error"]
        conn.close()

        status, metrics = _get(bg.port, "/metrics")
        assert status == 200
        assert metrics["recovery"]["rebuilding"] is True
        assert set(metrics["recovery"]) >= {
            "rebuilds", "retries", "quarantined", "timeouts", "rebuilding"
        }

        engine.recovery.set_rebuilding(False)
        status, _body = _post(bg.port, "/design", payloads[0])
        assert status == 200
    finally:
        bg.stop()


def test_request_timeout_is_504(tech, payloads):
    bg = serve_in_background(
        _engine(tech), request_timeout_seconds=0.001, batch_window_seconds=0.05
    )
    try:
        status, body = _post(bg.port, "/design", payloads[0])
        assert status == 504
        assert "timed out" in json.loads(body)["error"]
    finally:
        bg.stop()


def test_concurrent_clients_bit_identical_to_serial_sweep(tech, payloads):
    """32 concurrent clients; every response equals the direct serial oracle."""
    clients = 32
    bodies = [payloads[i % len(payloads)] for i in range(clients)]
    oracle = _oracle_records(tech, [parse_request(body) for body in bodies])

    bg = serve_in_background(_engine(tech), max_batch=clients)
    try:
        with ThreadPoolExecutor(max_workers=clients) as pool:
            responses = list(
                pool.map(lambda body: _post(bg.port, "/design", body), bodies)
            )
        status, metrics = _get(bg.port, "/metrics")
        assert status == 200
        assert metrics["requests_served"] == clients
        # 32 clients over 4 distinct payloads: dedup must have collapsed
        # at least some identical concurrent requests.
        assert metrics["requests_deduplicated"] > 0
        assert metrics["nets_failed"] == 0
    finally:
        bg.stop()

    for (status, raw), body in zip(responses, bodies):
        assert status == 200
        payload = json.loads(raw)
        assert payload["status"] == "ok"
        expected = oracle[parse_request(body).digest]
        assert [_strip_runtime(record) for record in payload["records"]] == expected


def test_injected_crash_is_isolated_to_its_request(tech, tiny_cases, payloads, monkeypatch):
    """One poisoned net among 32 concurrent requests: its response carries
    the failure, every sibling response stays bit-identical to the oracle."""
    poisoned_name = tiny_cases[1].net.name

    class PoisonedRip(design_module.Rip):
        def prepare(self, net):
            if net.name == poisoned_name:
                raise ValueError(f"poisoned {net.name}")
            return super().prepare(net)

    healthy_bodies = [
        payloads[i] for i in range(len(payloads)) if i != 1
    ]
    bodies = [healthy_bodies[i % len(healthy_bodies)] for i in range(31)]
    oracle = _oracle_records(tech, [parse_request(body) for body in bodies])
    bodies.append(payloads[1])  # the poisoned request rides the same burst

    monkeypatch.setattr(design_module, "Rip", PoisonedRip)
    bg = serve_in_background(_engine(tech), max_batch=32)
    try:
        with ThreadPoolExecutor(max_workers=32) as pool:
            responses = list(
                pool.map(lambda body: _post(bg.port, "/design", body), bodies)
            )
    finally:
        bg.stop()

    poisoned_status, poisoned_raw = responses[-1]
    assert poisoned_status == 200
    poisoned_payload = json.loads(poisoned_raw)
    assert poisoned_payload["status"] == "failed"
    assert poisoned_payload["failure_kind"] == "crashed"
    assert "ValueError" in poisoned_payload["error"]
    assert "records" not in poisoned_payload

    for (status, raw), body in zip(responses[:-1], bodies[:-1]):
        assert status == 200
        payload = json.loads(raw)
        assert payload["status"] == "ok"
        expected = oracle[parse_request(body).digest]
        assert [_strip_runtime(record) for record in payload["records"]] == expected


def test_envelope_streams_per_line_statuses(tech, payloads):
    bg = serve_in_background(_engine(tech))
    try:
        envelope = {"requests": [payloads[0], {"bogus": 1}, payloads[0]]}
        conn = http.client.HTTPConnection("127.0.0.1", bg.port, timeout=120)
        conn.request(
            "POST", "/design", body=json.dumps(envelope),
            headers={"Content-Type": "application/json"},
        )
        response = conn.getresponse()
        assert response.status == 200
        assert response.getheader("Content-Type") == "application/x-ndjson"
        lines = [
            json.loads(line)
            for line in response.read().decode().splitlines()
            if line.strip()
        ]
        conn.close()
    finally:
        bg.stop()
    by_index = {line["index"]: line for line in lines}
    assert len(by_index) == 3
    assert by_index[1]["status"] == "rejected"
    assert by_index[0]["status"] == "ok"
    assert by_index[2]["status"] == "ok"
    # The two identical entries were deduplicated into one design but both
    # streamed back with full records.
    assert by_index[0]["records"] == by_index[2]["records"]
    assert by_index[0]["request"] == by_index[2]["request"]
