"""Self-healing sweep execution tests (ISSUE 10).

Four layers, bottom up:

* ``REPRO_FAULTS`` spec parsing and the deterministic switchboard
  (:mod:`repro.analysis.faults`);
* :class:`~repro.engine.supervisor.SweepJournal` unit behavior — versioned
  self-keyed header, evict-on-corruption, torn-tail drop, later-entries-win;
* :class:`~repro.engine.supervisor.SupervisedExecutor` against toy tasks —
  SIGKILL'd workers are retried on a rebuilt pool, poison tasks are
  quarantined after their attempt budget, hung tasks are reaped at the
  deadline, ordinary exceptions propagate unchanged;
* full-engine integration — faults injected into a real population sweep
  leave every *other* net's records bit-identical (runtime excluded) to an
  all-healthy serial sweep, shm accounting stays balanced across a pool
  rebuild under ``REPRO_SANITIZE=1``, and a driver-killed ``rip sweep`` is
  resumed bit-for-bit from its journal by ``--resume`` in a fresh
  interpreter.

Pooled tests need the ``fork`` start method (workers must inherit the
``REPRO_FAULTS`` environment and the test module's task functions).
"""

from __future__ import annotations

import json
import multiprocessing
import os
import pickle
import signal
import subprocess
import sys
import time
from dataclasses import asdict
from pathlib import Path

import pytest

from repro.analysis import faults, sanitize
from repro.engine.cache import ProtocolConfig, ProtocolStore
from repro.engine.design import DesignEngine, MethodSpec
from repro.engine.supervisor import (
    JOURNAL_FORMAT_VERSION,
    RecoveryMonitor,
    RetryPolicy,
    SupervisedExecutor,
    SweepJournal,
)
from repro.tech.library import RepeaterLibrary

REPO_ROOT = Path(__file__).resolve().parents[1]
TINY = ProtocolConfig(num_nets=3, targets_per_net=3, seed=13)

fork_only = pytest.mark.skipif(
    multiprocessing.get_start_method() != "fork",
    reason="supervised-pool injection needs fork-inherited environment",
)


@pytest.fixture(autouse=True)
def _fault_isolation(monkeypatch):
    """Every test starts and ends with a clean fault switchboard."""
    monkeypatch.delenv(faults.ENV_VAR, raising=False)
    faults.reset()
    yield
    faults.reset()


def _inject(monkeypatch, spec: str) -> None:
    monkeypatch.setenv(faults.ENV_VAR, spec)
    faults.reset()


def _methods():
    return [
        MethodSpec.dp_baseline(
            "dp-g40", RepeaterLibrary.uniform_count(10.0, 40.0, 10)
        )
    ]


@pytest.fixture(scope="module")
def tiny_cases():
    return ProtocolStore().cases(TINY)


@pytest.fixture(scope="module")
def healthy(tiny_cases, tech):
    """All-healthy serial oracle every fault-injected sweep is compared to."""
    engine = DesignEngine(tech, workers=0, store=ProtocolStore())
    try:
        return engine.design_population(tiny_cases, _methods())
    finally:
        engine.close()


def _stripped(population, skip=()):
    """Record dicts minus runtime_seconds — the only nondeterministic field."""
    return [
        {k: v for k, v in asdict(record).items() if k != "runtime_seconds"}
        for net in population.nets
        if net.net_name not in skip
        for record in net.records
    ]


# --------------------------------------------------------------------------- #
# REPRO_FAULTS parsing and switchboard
# --------------------------------------------------------------------------- #
def test_parse_specs_full_and_defaulted_clause():
    specs = faults.parse_specs(
        "design.case@cmos180/net2:sigkill:1:7, wincache.disk-read:corrupt-cache-read:3"
    )
    assert specs == (
        faults.FaultSpec(
            site="design.case", mode="sigkill", count=1, key="cmos180/net2", seed=7
        ),
        faults.FaultSpec(
            site="wincache.disk-read", mode="corrupt-cache-read", count=3
        ),
    )


@pytest.mark.parametrize(
    "clause, fragment",
    [
        ("design.case:sigkill", "not site[@key]:mode:count"),
        ("no.such.site:crash:1", "unknown site"),
        ("design.case:meteor:1", "unknown mode"),
        ("design.case:crash:zero", "non-integer"),
        ("design.case:crash:0", "count >= 1"),
    ],
)
def test_parse_specs_rejects_malformed(clause, fragment):
    with pytest.raises(faults.FaultSpecError, match=fragment.replace("[", "\\[")):
        faults.parse_specs(clause)


def test_every_registered_site_is_documented():
    assert set(faults.SITES) == {
        "design.case",
        "kernels.fused-level",
        "wincache.disk-read",
        "service.batch",
    }
    assert all(description for description in faults.SITES.values())


def test_injected_fault_error_survives_pickle():
    error = faults.InjectedFaultError("design.case", "cmos180/net1", seed=3)
    clone = pickle.loads(pickle.dumps(error))
    assert (clone.site, clone.key, clone.seed) == ("design.case", "cmos180/net1", 3)
    assert "design.case" in str(clone)


def test_exception_mode_fires_for_matching_key_only(monkeypatch):
    _inject(monkeypatch, "design.case@cmos180/net2:exception:1")
    with faults.task_context("cmos180/net1", attempt=1):
        faults.maybe_inject("design.case")  # other key: no-op
    with faults.task_context("cmos180/net2", attempt=1):
        with pytest.raises(faults.InjectedFaultError):
            faults.maybe_inject("design.case")
    # Attempt budget: count=1 means attempts > 1 run clean (retry succeeds).
    with faults.task_context("cmos180/net2", attempt=2):
        faults.maybe_inject("design.case")


def test_corrupt_cache_read_budget_is_per_call(monkeypatch):
    _inject(monkeypatch, "wincache.disk-read:corrupt-cache-read:2:9")
    payload = '{"valid": true}'
    first = faults.maybe_corrupt("wincache.disk-read", payload)
    second = faults.maybe_corrupt("wincache.disk-read", payload)
    third = faults.maybe_corrupt("wincache.disk-read", payload)
    assert first == second == '{"repro-injected-corruption":9'
    assert third == payload  # budget of 2 exhausted
    with pytest.raises(ValueError):
        json.loads(first)  # corrupted payload is invalid JSON by design


def test_switchboard_disabled_is_noop():
    assert not faults.enabled()
    faults.maybe_inject("design.case")
    assert faults.maybe_corrupt("wincache.disk-read", "x") == "x"


# --------------------------------------------------------------------------- #
# SweepJournal
# --------------------------------------------------------------------------- #
COMPONENTS = {"population": "digest-a", "methods": ["dp-g40"], "targets": 3}


def test_journal_roundtrip_and_resume(tmp_path):
    journal = SweepJournal(tmp_path, COMPONENTS)
    assert journal.begin(resume=False) == {}
    journal.record("cmos180/net1", {"feasible": True, "width": 430.0})
    journal.record("cmos180/net2", {"feasible": False, "width": None})
    journal.close()

    again = SweepJournal(tmp_path, COMPONENTS)
    entries = again.begin(resume=True)
    again.close()
    assert entries == {
        "cmos180/net1": {"feasible": True, "width": 430.0},
        "cmos180/net2": {"feasible": False, "width": None},
    }


def test_journal_is_self_keyed_by_sweep_identity(tmp_path):
    journal = SweepJournal(tmp_path, COMPONENTS)
    other = SweepJournal(tmp_path, {**COMPONENTS, "targets": 4})
    assert journal.path != other.path  # different sweep, different file
    journal.begin(resume=False)
    journal.record("k", {"v": 1})
    journal.close()
    assert other.begin(resume=True) == {}  # never sees the other sweep
    other.close()


def test_journal_fresh_begin_truncates(tmp_path):
    journal = SweepJournal(tmp_path, COMPONENTS)
    journal.begin(resume=False)
    journal.record("k", {"v": 1})
    journal.close()
    fresh = SweepJournal(tmp_path, COMPONENTS)
    assert fresh.begin(resume=False) == {}
    fresh.close()
    assert SweepJournal(tmp_path, COMPONENTS).load() == {}


def test_journal_later_entries_win(tmp_path):
    journal = SweepJournal(tmp_path, COMPONENTS)
    journal.begin(resume=False)
    journal.record("k", {"v": 1})
    journal.record("k", {"v": 2})
    journal.close()
    assert SweepJournal(tmp_path, COMPONENTS).load() == {"k": {"v": 2}}


def test_journal_torn_tail_is_dropped(tmp_path):
    journal = SweepJournal(tmp_path, COMPONENTS)
    journal.begin(resume=False)
    journal.record("k1", {"v": 1})
    journal.record("k2", {"v": 2})
    journal.close()
    # Simulate a driver killed mid-write: the final line is torn.
    text = journal.path.read_text(encoding="utf-8")
    journal.path.write_text(text[:-20], encoding="utf-8")
    assert SweepJournal(tmp_path, COMPONENTS).load() == {"k1": {"v": 1}}


def test_journal_tampered_entry_digest_is_dropped(tmp_path):
    journal = SweepJournal(tmp_path, COMPONENTS)
    journal.begin(resume=False)
    journal.record("k1", {"v": 1})
    journal.close()
    lines = journal.path.read_text(encoding="utf-8").splitlines()
    lines[1] = lines[1].replace('"v": 1', '"v": 9')
    journal.path.write_text("\n".join(lines) + "\n", encoding="utf-8")
    assert SweepJournal(tmp_path, COMPONENTS).load() == {}


def test_journal_bad_header_evicts_file(tmp_path):
    journal = SweepJournal(tmp_path, COMPONENTS)
    journal.begin(resume=False)
    journal.record("k1", {"v": 1})
    journal.close()
    lines = journal.path.read_text(encoding="utf-8").splitlines()
    header = json.loads(lines[0])
    assert header["format_version"] == JOURNAL_FORMAT_VERSION
    header["format_version"] = JOURNAL_FORMAT_VERSION + 1
    lines[0] = json.dumps(header, sort_keys=True)
    journal.path.write_text("\n".join(lines) + "\n", encoding="utf-8")
    assert SweepJournal(tmp_path, COMPONENTS).load() == {}
    assert not journal.path.exists()  # evicted outright, not just skipped


# --------------------------------------------------------------------------- #
# SupervisedExecutor against toy tasks
# --------------------------------------------------------------------------- #
def _toy_task(payload, attempt):
    """Toy worker: payload is (verb, value); verbs exercise each fault path."""
    verb, value = payload
    if verb == "sigkill-once" and attempt == 1:
        os.kill(os.getpid(), signal.SIGKILL)
    if verb == "sigkill-always":
        os.kill(os.getpid(), signal.SIGKILL)
    if verb == "hang":
        time.sleep(120.0)
    if verb == "raise":
        raise ValueError(f"task error {value}")
    return value * 2


@fork_only
def test_executor_retries_sigkilled_task_on_rebuilt_pool():
    monitor = RecoveryMonitor()
    executor = SupervisedExecutor(max_workers=2, monitor=monitor)
    payloads = [("ok", 1), ("sigkill-once", 2), ("ok", 3)]
    outcomes = executor.run(_toy_task, payloads)
    assert [outcome.value for outcome in outcomes] == [2, 4, 6]
    assert outcomes[1].attempts == 2
    snapshot = monitor.snapshot()
    assert snapshot["rebuilds"] >= 1
    assert snapshot["quarantined"] == 0
    assert not snapshot["rebuilding"]


@fork_only
def test_executor_quarantines_poison_task_after_attempt_budget():
    monitor = RecoveryMonitor()
    executor = SupervisedExecutor(
        max_workers=2,
        retry=RetryPolicy(max_attempts=2, backoff_s=0.0),
        monitor=monitor,
    )
    outcomes = executor.run(_toy_task, [("ok", 1), ("sigkill-always", 2), ("ok", 3)])
    assert outcomes[0].value == 2 and outcomes[2].value == 6
    poisoned = outcomes[1]
    assert not poisoned.ok
    assert poisoned.failure.kind == "poisoned"
    assert poisoned.failure.attempts == 2
    assert "collapsed the worker pool on attempt 2/2" in poisoned.failure.detail
    assert monitor.snapshot()["quarantined"] == 1


@fork_only
def test_executor_reaps_hung_task_at_deadline():
    monitor = RecoveryMonitor()
    executor = SupervisedExecutor(
        max_workers=2, task_timeout_s=1.0, monitor=monitor
    )
    started = time.monotonic()
    outcomes = executor.run(_toy_task, [("hang", 1), ("ok", 2), ("ok", 3)])
    elapsed = time.monotonic() - started
    assert elapsed < 60.0  # reaped at the deadline, not at task completion
    hung = outcomes[0]
    assert not hung.ok
    assert hung.failure.kind == "timeout"
    assert "deadline" in hung.failure.detail
    # Innocent collateral of the reap is resubmitted and still succeeds.
    assert [outcome.value for outcome in outcomes[1:]] == [4, 6]
    assert monitor.snapshot()["timeouts"] == 1


@fork_only
def test_executor_propagates_ordinary_exceptions():
    executor = SupervisedExecutor(max_workers=2)
    with pytest.raises(ValueError, match="task error 7"):
        executor.run(_toy_task, [("ok", 1), ("raise", 7)])


@fork_only
def test_executor_streams_results_in_input_order():
    seen = []
    executor = SupervisedExecutor(max_workers=2)
    outcomes = executor.run(
        _toy_task,
        [("ok", value) for value in range(5)],
        keys=[f"toy/{value}" for value in range(5)],
        on_result=lambda index, outcome: seen.append((index, outcome.value)),
    )
    assert [outcome.value for outcome in outcomes] == [0, 2, 4, 6, 8]
    assert sorted(seen) == [(index, index * 2) for index in range(5)]


# --------------------------------------------------------------------------- #
# full-engine integration under REPRO_FAULTS
# --------------------------------------------------------------------------- #
@fork_only
def test_sigkilled_net_is_retried_and_sweep_matches_oracle(
    tiny_cases, healthy, tech, monkeypatch
):
    victim = tiny_cases[1].net.name
    _inject(monkeypatch, f"design.case@{tech.name}/{victim}:sigkill:1")
    engine = DesignEngine(tech, workers=2, store=ProtocolStore())
    try:
        population = engine.design_population(tiny_cases, _methods())
        snapshot = engine.recovery.snapshot()
    finally:
        engine.close()
    assert population.failures() == ()
    assert _stripped(population) == _stripped(healthy)
    (retried,) = [net for net in population.nets if net.net_name == victim]
    assert retried.attempts == 2
    assert snapshot["rebuilds"] >= 1


@fork_only
def test_poison_net_is_quarantined_and_siblings_match_oracle(
    tiny_cases, healthy, tech, monkeypatch
):
    victim = tiny_cases[0].net.name
    _inject(monkeypatch, f"design.case@{tech.name}/{victim}:crash:2")
    engine = DesignEngine(tech, workers=2, store=ProtocolStore())
    try:
        population = engine.design_population(tiny_cases, _methods())
        snapshot = engine.recovery.snapshot()
    finally:
        engine.close()
    (failure,) = population.failures()
    assert failure.net_name == victim
    assert failure.failure_kind == "poisoned"
    assert failure.attempts == 2
    assert failure.records == ()
    assert population.failures(kind="poisoned") == (failure,)
    assert _stripped(population, skip={victim}) == _stripped(healthy, skip={victim})
    assert snapshot["quarantined"] == 1


@fork_only
def test_hung_net_times_out_and_siblings_match_oracle(
    tiny_cases, healthy, tech, monkeypatch
):
    victim = tiny_cases[2].net.name
    _inject(monkeypatch, f"design.case@{tech.name}/{victim}:hang:99")
    engine = DesignEngine(
        tech, workers=2, store=ProtocolStore(), task_timeout_s=2.0
    )
    try:
        population = engine.design_population(tiny_cases, _methods())
        snapshot = engine.recovery.snapshot()
    finally:
        engine.close()
    (failure,) = population.failures()
    assert failure.net_name == victim
    assert failure.failure_kind == "timeout"
    assert _stripped(population, skip={victim}) == _stripped(healthy, skip={victim})
    assert snapshot["timeouts"] >= 1


@fork_only
def test_shm_accounting_balanced_across_rebuild_under_sanitizer(
    tiny_cases, tech, monkeypatch
):
    """Satellite 1: a pool rebuild re-attaches the same arena; with
    REPRO_SANITIZE on, close() asserts the create/unlink ledger balances."""
    victim = tiny_cases[1].net.name
    _inject(monkeypatch, f"design.case@{tech.name}/{victim}:sigkill:1")
    monkeypatch.setenv(sanitize.ENV_VAR, "1")
    engine = DesignEngine(tech, workers=2, store=ProtocolStore())
    try:
        population = engine.design_population(tiny_cases, _methods())
        assert population.failures() == ()
        assert engine.recovery.snapshot()["rebuilds"] >= 1
    finally:
        engine.close()
    assert engine._arenas == []


@fork_only
def test_resume_retries_quarantined_net(tiny_cases, healthy, tech, monkeypatch, tmp_path):
    """Poisoned/timeout failures are deliberately not journaled — a resumed
    sweep retries them (now healthy) and completes the record set."""
    victim = tiny_cases[1].net.name
    _inject(monkeypatch, f"design.case@{tech.name}/{victim}:crash:2")
    engine = DesignEngine(tech, workers=2, store=ProtocolStore(cache_dir=tmp_path))
    try:
        first = engine.design_population(tiny_cases, _methods(), checkpoint=True)
    finally:
        engine.close()
    assert first.failures(kind="poisoned") != ()

    monkeypatch.delenv(faults.ENV_VAR)
    faults.reset()
    engine = DesignEngine(tech, workers=2, store=ProtocolStore(cache_dir=tmp_path))
    try:
        resumed = engine.design_population(tiny_cases, _methods(), resume=True)
    finally:
        engine.close()
    assert resumed.failures() == ()
    assert _stripped(resumed) == _stripped(healthy)
    # The healthy siblings were replayed from the journal, bit-for-bit
    # including runtime — only the retried victim was recomputed.
    survivors_first = {
        net.net_name: net for net in first.nets if net.net_name != victim
    }
    for net in resumed.nets:
        if net.net_name != victim:
            assert net == survivors_first[net.net_name]


# --------------------------------------------------------------------------- #
# driver-kill resume through the CLI (fresh interpreter)
# --------------------------------------------------------------------------- #
_CLI = (
    "import sys; from repro.cli.main import main; sys.exit(main(sys.argv[1:]))"
)


def _sweep_argv(cache_dir, json_path, *extra):
    return [
        sys.executable, "-c", _CLI,
        "sweep", "--nets", "3", "--targets", "2", "--seed", "13",
        "--methods", "dp-g40", "--workers", "2",
        "--cache-dir", str(cache_dir), "--json", str(json_path), *extra,
    ]


def _cli_env(**overrides):
    env = dict(os.environ)
    env.pop(faults.ENV_VAR, None)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    env.update(overrides)
    return env


def _rows(json_path):
    payload = json.loads(Path(json_path).read_text(encoding="utf-8"))
    records = [
        {k: v for k, v in record.items() if k != "runtime_seconds"}
        for record in payload["records"]
    ]
    return records, payload["failures"]


@fork_only
def test_cli_driver_kill_then_resume_is_bit_identical(tmp_path):
    """Kill the sweep *driver* mid-run (one net hung so the journal holds
    only the completed siblings), then ``--resume`` in a fresh interpreter:
    the result equals an uninterrupted healthy sweep."""
    oracle_json = tmp_path / "oracle.json"
    subprocess.run(
        _sweep_argv(tmp_path / "oracle-cache", oracle_json),
        env=_cli_env(), cwd=REPO_ROOT, check=True, capture_output=True,
        timeout=600,
    )

    cache_dir = tmp_path / "cache"
    first_json = tmp_path / "first.json"
    victim = subprocess.Popen(
        _sweep_argv(cache_dir, first_json),
        env=_cli_env(REPRO_FAULTS="design.case@cmos180/net3:hang:99"),
        cwd=REPO_ROOT, stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
    )
    try:
        journal_dir = cache_dir / "journal"
        deadline = time.monotonic() + 300.0
        completed = 0
        while time.monotonic() < deadline:
            journals = list(journal_dir.glob("sweep-*.journal"))
            if journals:
                lines = journals[0].read_text(encoding="utf-8").splitlines()
                completed = max(0, len(lines) - 1)  # header + one line per task
                if completed >= 2:
                    break
            time.sleep(0.2)
        assert completed >= 2, "journal never recorded the healthy nets"
    finally:
        victim.kill()
        victim.wait(timeout=60)
    assert not first_json.exists()  # the driver died before writing output

    resumed_json = tmp_path / "resumed.json"
    result = subprocess.run(
        _sweep_argv(cache_dir, resumed_json, "--resume"),
        env=_cli_env(), cwd=REPO_ROOT, capture_output=True, text=True,
        timeout=600,
    )
    assert result.returncode == 0, result.stderr
    assert _rows(resumed_json) == _rows(oracle_json)


def test_cli_resume_requires_disk_cache(capsys):
    from repro.cli.main import main as cli_main

    assert cli_main(["sweep", "--nets", "2", "--resume"]) == 2
    assert "--resume" in capsys.readouterr().err
