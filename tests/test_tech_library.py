"""Tests for repeater libraries."""

import pytest

from repro.tech.library import RepeaterLibrary
from repro.utils.validation import ValidationError


def test_widths_are_sorted_and_deduplicated():
    library = RepeaterLibrary((40.0, 10.0, 40.0, 20.0))
    assert library.widths == (10.0, 20.0, 40.0)


def test_uniform_range_inclusive_of_max():
    library = RepeaterLibrary.uniform(10.0, 400.0, 10.0)
    assert len(library) == 40
    assert library.min_width == 10.0
    assert library.max_width == 400.0


def test_uniform_range_granularity_40():
    library = RepeaterLibrary.uniform(10.0, 400.0, 40.0)
    assert library.widths == tuple(10.0 + 40.0 * i for i in range(10))


def test_uniform_count_matches_paper_size_10():
    library = RepeaterLibrary.uniform_count(10.0, 20.0, 10)
    assert len(library) == 10
    assert library.max_width == pytest.approx(10.0 + 9 * 20.0)


def test_paper_coarse_library():
    library = RepeaterLibrary.paper_coarse()
    assert library.widths == (80.0, 160.0, 240.0, 320.0, 400.0)


def test_contains_with_tolerance():
    library = RepeaterLibrary.uniform(10.0, 100.0, 10.0)
    assert 50.0 in library
    assert 50.0 + 1e-12 in library
    assert 55.0 not in library


def test_nearest_prefers_smaller_on_ties():
    library = RepeaterLibrary((10.0, 20.0))
    assert library.nearest(15.0) == 10.0
    assert library.nearest(17.0) == 20.0


def test_round_to_grid_never_below_one_step():
    library = RepeaterLibrary((10.0,))
    assert library.round_to_grid(2.0, 10.0) == 10.0
    assert library.round_to_grid(26.0, 10.0) == 30.0
    assert library.round_to_grid(24.0, 10.0) == 20.0


def test_merged_with_keeps_both_and_sorts():
    library = RepeaterLibrary((10.0, 30.0)).merged_with([20.0, 30.0])
    assert library.widths == (10.0, 20.0, 30.0)


def test_empty_library_rejected():
    with pytest.raises(ValidationError):
        RepeaterLibrary(())


def test_non_positive_width_rejected():
    with pytest.raises(ValidationError):
        RepeaterLibrary((10.0, 0.0))


def test_iteration_and_len():
    library = RepeaterLibrary.uniform_count(80.0, 80.0, 5)
    assert list(library) == [80.0, 160.0, 240.0, 320.0, 400.0]
    assert len(library) == 5
