"""Tests for the switch-level repeater model."""

import pytest

from repro.tech.repeater import RepeaterParameters
from repro.utils.validation import ValidationError


@pytest.fixture
def repeater():
    return RepeaterParameters(
        unit_resistance=9000.0,
        unit_input_capacitance=1.8e-15,
        unit_output_capacitance=1.6e-15,
        min_width=1.0,
        max_width=400.0,
    )


def test_drive_resistance_scales_inversely(repeater):
    assert repeater.drive_resistance(1.0) == pytest.approx(9000.0)
    assert repeater.drive_resistance(100.0) == pytest.approx(90.0)


def test_input_capacitance_scales_linearly(repeater):
    assert repeater.input_capacitance(50.0) == pytest.approx(50.0 * 1.8e-15)


def test_output_capacitance_scales_linearly(repeater):
    assert repeater.output_capacitance(10.0) == pytest.approx(16.0e-15)


def test_intrinsic_delay_is_width_independent(repeater):
    # (Rs / w) * (Cp * w) must equal Rs * Cp for any width.
    for width in (1.0, 13.0, 377.0):
        product = repeater.drive_resistance(width) * repeater.output_capacitance(width)
        assert product == pytest.approx(repeater.intrinsic_delay)


def test_clamp_width(repeater):
    assert repeater.clamp_width(0.2) == pytest.approx(1.0)
    assert repeater.clamp_width(1000.0) == pytest.approx(400.0)
    assert repeater.clamp_width(37.0) == pytest.approx(37.0)


def test_rejects_non_positive_constants():
    with pytest.raises(ValidationError):
        RepeaterParameters(0.0, 1e-15, 1e-15)
    with pytest.raises(ValidationError):
        RepeaterParameters(1000.0, -1e-15, 1e-15)


def test_rejects_inverted_width_range():
    with pytest.raises(ValueError):
        RepeaterParameters(1000.0, 1e-15, 1e-15, min_width=10.0, max_width=5.0)


def test_drive_resistance_rejects_zero_width(repeater):
    with pytest.raises(ValidationError):
        repeater.drive_resistance(0.0)
