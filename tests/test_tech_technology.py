"""Tests for the Technology aggregate."""

import pytest

from repro.tech.nodes import NODE_180NM, available_nodes, get_node
from repro.tech.power import PowerParameters
from repro.tech.repeater import RepeaterParameters
from repro.tech.technology import Technology
from repro.tech.wire import WireLayer


def _minimal_technology():
    return Technology(
        name="toy",
        repeater=RepeaterParameters(1000.0, 1e-15, 1e-15),
        layers={"m1": WireLayer("m1", 1.0e5, 2.0e-10)},
        power=PowerParameters(1.0, 1.0e9, 0.5, 1.0e-9),
    )


def test_layer_lookup():
    technology = _minimal_technology()
    assert technology.layer("m1").name == "m1"


def test_layer_lookup_unknown_lists_available():
    technology = _minimal_technology()
    with pytest.raises(KeyError, match="m1"):
        technology.layer("m9")


def test_layer_names_sorted(tech):
    assert list(tech.layer_names) == sorted(tech.layer_names)


def test_repeater_power_affine_in_width():
    technology = _minimal_technology()
    p0 = technology.repeater_power(0.0)
    p100 = technology.repeater_power(100.0)
    p200 = technology.repeater_power(200.0)
    assert p0 == pytest.approx(0.0)
    # Affine with zero offset => doubling the width doubles the power.
    assert p200 == pytest.approx(2.0 * p100)


def test_with_layers_overrides_and_adds():
    technology = _minimal_technology()
    updated = technology.with_layers({"m2": WireLayer("m2", 5.0e4, 2.0e-10)})
    assert "m2" in updated.layer_names
    assert "m1" in updated.layer_names
    # the original is untouched
    assert "m2" not in technology.layer_names


def test_requires_at_least_one_layer():
    with pytest.raises(ValueError):
        Technology(
            name="broken",
            repeater=RepeaterParameters(1000.0, 1e-15, 1e-15),
            layers={},
            power=PowerParameters(1.0, 1.0e9, 0.5, 1.0e-9),
        )


def test_predefined_nodes_lookup():
    assert "cmos180" in available_nodes()
    assert get_node("cmos180") is NODE_180NM


def test_predefined_nodes_unknown():
    with pytest.raises(KeyError):
        get_node("cmos7")


def test_node_180nm_has_paper_layers(tech):
    assert "metal4" in tech.layer_names
    assert "metal5" in tech.layer_names


def test_node_scaling_trend_wire_resistance_increases():
    # Finer nodes have thinner (more resistive) wires on comparable layers.
    r180 = get_node("cmos180").layer("metal4").resistance_per_meter
    r130 = get_node("cmos130").layer("metal4").resistance_per_meter
    assert r130 > r180
