"""Tests for wire layers and power-model constants."""

import pytest

from repro.tech.power import PowerParameters
from repro.tech.wire import WireLayer
from repro.utils.validation import ValidationError


def test_wire_resistance_and_capacitance_scale_with_length():
    layer = WireLayer("metal4", resistance_per_meter=4.0e4, capacitance_per_meter=2.0e-10)
    assert layer.resistance(1e-3) == pytest.approx(40.0)
    assert layer.capacitance(1e-3) == pytest.approx(2.0e-13)


def test_wire_zero_length_is_zero():
    layer = WireLayer("metal5", 3.0e4, 2.1e-10)
    assert layer.resistance(0.0) == 0.0
    assert layer.capacitance(0.0) == 0.0


def test_wire_rc_product():
    layer = WireLayer("metal5", 3.0e4, 2.0e-10)
    assert layer.rc_product == pytest.approx(6.0e-6)


def test_wire_rejects_empty_name():
    with pytest.raises(ValueError):
        WireLayer("", 1.0, 1.0)


def test_wire_rejects_negative_length():
    layer = WireLayer("metal4", 4.0e4, 2.0e-10)
    with pytest.raises(ValidationError):
        layer.resistance(-1.0)


def test_power_dynamic_formula():
    power = PowerParameters(
        supply_voltage=1.8,
        clock_frequency=1.0e9,
        activity_factor=0.2,
        leakage_per_unit_width=1.0e-8,
    )
    capacitance = 1.0e-12
    expected = 0.2 * 1.8**2 * 1.0e9 * capacitance
    assert power.dynamic_power(capacitance) == pytest.approx(expected)


def test_power_short_circuit_fraction_scales_dynamic():
    base = PowerParameters(1.8, 1.0e9, 0.2, 0.0)
    with_sc = PowerParameters(1.8, 1.0e9, 0.2, 0.0, short_circuit_fraction=0.1)
    assert with_sc.dynamic_power(1e-12) == pytest.approx(1.1 * base.dynamic_power(1e-12))


def test_power_leakage_linear_in_width():
    power = PowerParameters(1.8, 1.0e9, 0.2, 2.0e-8)
    assert power.leakage_power(100.0) == pytest.approx(2.0e-6)


def test_power_rejects_activity_above_one():
    with pytest.raises(ValidationError):
        PowerParameters(1.8, 1.0e9, 1.5, 0.0)


def test_power_rejects_negative_capacitance():
    power = PowerParameters(1.8, 1.0e9, 0.2, 0.0)
    with pytest.raises(ValidationError):
        power.dynamic_power(-1.0e-15)
