"""Tests for the interconnect-tree extension."""

import pytest

from repro.dp.candidates import uniform_candidates
from repro.dp.powerdp import PowerAwareDp
from repro.dp.pruning import PruningConfig
from repro.engine.compiled import CompiledTree
from repro.net.segment import WireSegment
from repro.net.twopin import TwoPinNet
from repro.tech.library import RepeaterLibrary
from repro.tree.buffering import TreePowerDp
from repro.tree.generator import RandomTreeGenerator, TreeGenerationConfig
from repro.tree.rctree import RoutingTree
from repro.utils.units import from_microns
from repro.utils.validation import ValidationError


def _chain_tree(tech, *, length_um=8000.0, segments=4, driver=120.0, receiver=60.0):
    """A degenerate tree (single path) mirroring a uniform two-pin net."""
    layer = tech.layer("metal4")
    tree = RoutingTree("driver", driver_width=driver)
    previous = "driver"
    for index in range(segments):
        node = f"n{index + 1}"
        tree.add_edge(
            previous,
            node,
            length=from_microns(length_um / segments),
            resistance_per_meter=layer.resistance_per_meter,
            capacitance_per_meter=layer.capacitance_per_meter,
        )
        previous = node
    tree.mark_sink(previous, receiver)
    return tree


def _branchy_tree(tech):
    layer4 = tech.layer("metal4")
    layer5 = tech.layer("metal5")
    tree = RoutingTree("driver", driver_width=120.0, name="branchy")
    tree.add_edge("driver", "trunk", length=from_microns(3000.0),
                  resistance_per_meter=layer4.resistance_per_meter,
                  capacitance_per_meter=layer4.capacitance_per_meter)
    tree.add_edge("trunk", "left", length=from_microns(4000.0),
                  resistance_per_meter=layer5.resistance_per_meter,
                  capacitance_per_meter=layer5.capacitance_per_meter)
    tree.add_edge("trunk", "right", length=from_microns(6000.0),
                  resistance_per_meter=layer4.resistance_per_meter,
                  capacitance_per_meter=layer4.capacitance_per_meter)
    tree.mark_sink("left", 60.0)
    tree.mark_sink("right", 40.0)
    return tree


# --------------------------------------------------------------------------- #
# RoutingTree structure
# --------------------------------------------------------------------------- #
def test_routing_tree_structure(tech):
    tree = _branchy_tree(tech)
    tree.validate()
    assert tree.num_sinks == 2
    assert set(tree.children("trunk")) == {"left", "right"}
    assert tree.edge_to("left").parent == "trunk"
    assert tree.total_wire_length() == pytest.approx(from_microns(13000.0))
    assert tree.sink("left").receiver_width == 60.0
    assert tree.sink("trunk") is None
    assert "branchy" in tree.describe()


def test_routing_tree_validate_rejects_unmarked_leaf(tech):
    tree = _branchy_tree(tech)
    layer = tech.layer("metal4")
    tree.add_edge("trunk", "dangling", length=1e-3,
                  resistance_per_meter=layer.resistance_per_meter,
                  capacitance_per_meter=layer.capacitance_per_meter)
    with pytest.raises(ValidationError):
        tree.validate()


def test_routing_tree_rejects_duplicate_node(tech):
    tree = _branchy_tree(tech)
    layer = tech.layer("metal4")
    with pytest.raises(ValidationError):
        tree.add_edge("driver", "trunk", length=1e-3,
                      resistance_per_meter=layer.resistance_per_meter,
                      capacitance_per_meter=layer.capacitance_per_meter)


def test_routing_tree_root_cannot_be_sink(tech):
    tree = _branchy_tree(tech)
    with pytest.raises(ValidationError):
        tree.mark_sink("driver", 10.0)


# --------------------------------------------------------------------------- #
# TreePowerDp
# --------------------------------------------------------------------------- #
def test_chain_tree_matches_two_pin_dp(tech):
    """On a degenerate (single-path) tree the tree engine must reproduce the
    two-pin power DP exactly: same candidate pitch, same library."""
    length_um, segments = 8000.0, 4
    tree = _chain_tree(tech, length_um=length_um, segments=segments)
    layer = tech.layer("metal4")
    net = TwoPinNet(
        segments=tuple(
            WireSegment.on_layer(layer, from_microns(length_um / segments))
            for _ in range(segments)
        ),
        driver_width=120.0,
        receiver_width=60.0,
    )
    library = RepeaterLibrary((60.0, 120.0, 240.0))
    pitch = from_microns(500.0)

    chain_result = PowerAwareDp(tech).run(net, library, uniform_candidates(net, pitch))
    tree_dp = TreePowerDp(tech, site_pitch=pitch)

    for factor in (1.1, 1.4, 1.9):
        target = factor * chain_result.min_delay()
        chain_point = chain_result.best_for_delay(target)
        tree_solution = tree_dp.run(tree, library, target)
        assert tree_solution.feasible
        assert tree_solution.total_width == pytest.approx(chain_point.total_width)


@pytest.mark.parametrize("core", ["reference", "fused", "batched"])
def test_chain_tree_bit_identical_to_two_pin_dp(tech, core):
    """On a degenerate (single-path) tree every tree core must reproduce the
    two-pin power DP *bit for bit* — same widths, delays and repeater
    positions, not just approximately.

    The geometry is exact in binary floating point (segment length
    ``2**-9`` m, site pitch ``2**-11`` m) so the tree's child-relative site
    schedule maps onto driver-relative two-pin candidates without rounding,
    and the two-pin pruning runs at zero tolerance to match the tree DP's
    exact 3-D dominance."""
    layer = tech.layer("metal4")
    pitch = 2.0**-11  # ~488 um, exact in binary
    segment_length = 2.0**-9  # 4 * pitch
    segments = 4

    tree = RoutingTree("driver", driver_width=120.0, name="chain")
    previous = "driver"
    for index in range(segments):
        node = f"n{index + 1}"
        tree.add_edge(previous, node, length=segment_length,
                      resistance_per_meter=layer.resistance_per_meter,
                      capacitance_per_meter=layer.capacitance_per_meter)
        previous = node
    tree.mark_sink(previous, 60.0)
    net = TwoPinNet(
        segments=tuple(
            WireSegment.on_layer(layer, segment_length) for _ in range(segments)
        ),
        driver_width=120.0,
        receiver_width=60.0,
    )

    # The tree places sites per edge, child-relative and strictly interior;
    # hand the two-pin DP exactly those positions, driver-relative.
    compiled = CompiledTree(tree, pitch)
    depth = {"driver": 0.0}
    for edge in tree.edges:
        depth[edge.child] = depth[edge.parent] + edge.length
    candidates = sorted(
        depth[child] - site
        for child, compiled_edge in compiled.edges.items()
        for site in compiled_edge.sites
    )

    library = RepeaterLibrary((60.0, 120.0, 240.0))
    exact = PruningConfig(delay_tolerance=0.0, width_tolerance=0.0)
    chain_result = PowerAwareDp(tech, exact).run(net, library, candidates)
    tree_dp = TreePowerDp(tech, site_pitch=pitch, core=core)

    for factor in (1.05, 1.2, 1.5, 2.0):
        target = factor * chain_result.min_delay()
        chain_point = chain_result.best_for_delay(target)
        solution = tree_dp.run(tree, library, target, compiled=compiled)
        assert solution.feasible
        assert solution.total_width == chain_point.total_width
        assert solution.worst_delay == chain_point.delay
        positions = sorted(
            depth[a.child] - a.distance_from_child for a in solution.assignments
        )
        assert positions == sorted(chain_point.solution.positions)
        assert sorted(a.width for a in solution.assignments) == sorted(
            chain_point.solution.widths
        )


def test_tree_dp_meets_target_on_branchy_tree(tech):
    tree = _branchy_tree(tech)
    library = RepeaterLibrary.uniform(40.0, 240.0, 40.0)
    dp = TreePowerDp(tech, site_pitch=from_microns(500.0))
    fast = dp.run(tree, library, timing_target=1e-9)
    assert fast.feasible
    assert fast.worst_delay <= 1e-9


def test_tree_dp_monotone_in_target(tech):
    tree = _branchy_tree(tech)
    library = RepeaterLibrary.uniform(40.0, 240.0, 40.0)
    dp = TreePowerDp(tech, site_pitch=from_microns(500.0))
    tight = dp.run(tree, library, timing_target=0.45e-9)
    loose = dp.run(tree, library, timing_target=1.5e-9)
    assert tight.total_width >= loose.total_width


def test_tree_dp_infeasible_target(tech):
    tree = _branchy_tree(tech)
    library = RepeaterLibrary((40.0,))
    dp = TreePowerDp(tech, site_pitch=from_microns(1000.0))
    result = dp.run(tree, library, timing_target=1e-12)
    assert not result.feasible
    assert result.worst_delay > 1e-12


def test_tree_dp_assignments_reference_real_edges(tech):
    tree = _branchy_tree(tech)
    library = RepeaterLibrary.uniform(40.0, 240.0, 40.0)
    dp = TreePowerDp(tech, site_pitch=from_microns(500.0))
    solution = dp.run(tree, library, timing_target=0.5e-9)
    edges = {(edge.parent, edge.child): edge for edge in tree.edges}
    for assignment in solution.assignments:
        edge = edges[(assignment.parent, assignment.child)]
        assert 0.0 < assignment.distance_from_child < edge.length
        assert assignment.width in library
    assert solution.total_width == pytest.approx(
        sum(a.width for a in solution.assignments)
    )


# --------------------------------------------------------------------------- #
# generator
# --------------------------------------------------------------------------- #
def test_tree_generator_produces_valid_trees(tech):
    generator = RandomTreeGenerator(tech, TreeGenerationConfig(num_sinks=5), seed=3)
    for _ in range(5):
        tree = generator.generate()
        tree.validate()
        assert tree.num_sinks >= 1
        assert tree.total_wire_length() > 0.0


def test_tree_generator_deterministic(tech):
    a = RandomTreeGenerator(tech, seed=9).generate()
    b = RandomTreeGenerator(tech, seed=9).generate()
    assert a.total_wire_length() == pytest.approx(b.total_wire_length())
    assert a.num_sinks == b.num_sinks


def test_tree_generator_rejects_unknown_layer(tech):
    with pytest.raises(KeyError):
        RandomTreeGenerator(tech, TreeGenerationConfig(layers=("metal99",)), seed=1)
