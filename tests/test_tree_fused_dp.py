"""Bit-exactness property suite for the compiled tree-DP engine (ISSUE 8).

The Python reference tree DP (``TreePowerDp(core="reference")``) is the
oracle; the fused kernels and the cross-tree lockstep driver must reproduce
it *bit for bit* — buffer assignments, worst-sink delay, total width,
feasibility and the per-solve statistics — over random trees, degenerate
chains, wide fan-in merges, hard state caps and infeasible targets.  The
serve layer rides the same oracle: the window cache's tree tier, the tree
serialisation round-trip, the H-tree workload generator and the
DesignEngine population path (serial and multiprocess/shared-memory) are
covered here too.
"""

import pytest

from repro.engine.batched import BatchedDpDriver, TreeDpProblem
from repro.engine.compiled import CompiledTree
from repro.engine.design import DesignEngine, MethodSpec, build_htree_cases
from repro.engine.wincache import (
    WindowCompilationCache,
    tree_fingerprint,
)
from repro.tech.library import RepeaterLibrary
from repro.tree.buffering import TreePowerDp
from repro.tree.generator import RandomTreeGenerator, TreeGenerationConfig, htree
from repro.tree.io import tree_from_dict, tree_to_dict
from repro.tree.rctree import RoutingTree
from repro.utils.units import from_microns

PITCH = from_microns(500.0)


def _signature(solution):
    return (
        tuple(
            (a.parent, a.child, a.distance_from_child, a.width)
            for a in solution.assignments
        ),
        solution.worst_delay,
        solution.total_width,
        solution.feasible,
    )


def _stats_signature(statistics):
    # runtime_seconds legitimately differs between runs; everything else is
    # part of the bit-exactness contract.
    return (
        statistics.num_edges,
        statistics.num_sites,
        statistics.library_size,
        statistics.states_generated,
        statistics.max_front_size,
    )


def _targets_for(tech, tree, library, *, pitch=PITCH, max_states=4000):
    """Skew-anchored target ladder plus two infeasible targets.

    An unreachably tight target makes the per-target selection return the
    minimum worst-sink delay solution, so ``probe.worst_delay`` is the
    tree's ``tau_min``.
    """
    probe = TreePowerDp(
        tech, site_pitch=pitch, max_states_per_node=max_states
    ).run(tree, library, 1.0e-18)
    tau_min = probe.worst_delay
    return [1.0e-15, 0.5 * tau_min, 1.05 * tau_min, 1.3 * tau_min, 2.0 * tau_min]


def _assert_cores_identical(tech, tree, library, targets, *, pitch=PITCH, max_states=4000):
    """Reference vs fused vs batched: identical solutions and statistics."""
    compiled = CompiledTree(tree, pitch)
    outcomes = {}
    for core in ("reference", "fused"):
        dp = TreePowerDp(
            tech, site_pitch=pitch, max_states_per_node=max_states, core=core
        )
        solutions = dp.run_many(tree, library, targets, compiled=compiled)
        outcomes[core] = (
            [_signature(s) for s in solutions],
            _stats_signature(solutions[0].statistics),
        )
    batched = BatchedDpDriver(tech).run_tree_power(
        [
            TreeDpProblem(
                tree,
                library,
                targets,
                compiled=compiled,
                site_pitch=pitch,
                max_states_per_node=max_states,
            )
        ]
    )[0]
    outcomes["batched"] = (
        [_signature(s) for s in batched],
        _stats_signature(batched[0].statistics),
    )
    assert outcomes["fused"] == outcomes["reference"]
    assert outcomes["batched"] == outcomes["reference"]
    return outcomes["reference"]


# --------------------------------------------------------------------------- #
# Core equivalence properties
# --------------------------------------------------------------------------- #
@pytest.mark.parametrize("seed", [0, 1, 2, 7, 11, 23])
def test_random_trees_bit_identical_across_cores(tech, seed):
    generator = RandomTreeGenerator(
        tech, TreeGenerationConfig(num_sinks=3 + seed % 4), seed=seed
    )
    tree = generator.generate()
    library = RepeaterLibrary.uniform(40.0, 240.0, 40.0)
    targets = _targets_for(tech, tree, library)
    rows, _ = _assert_cores_identical(tech, tree, library, targets)
    assert not rows[0][3]  # the 1 fs target is infeasible
    assert rows[-1][3]  # 2x tau_min is feasible


def test_single_edge_tree(tech):
    layer = tech.layer("metal4")
    tree = RoutingTree("driver", driver_width=120.0, name="single")
    tree.add_edge(
        "driver",
        "sink",
        length=from_microns(6000.0),
        resistance_per_meter=layer.resistance_per_meter,
        capacitance_per_meter=layer.capacitance_per_meter,
    )
    tree.mark_sink("sink", 60.0)
    library = RepeaterLibrary((40.0, 120.0, 360.0))
    _assert_cores_identical(tech, tree, library, _targets_for(tech, tree, library))


def test_deep_chain_tree(tech):
    layer = tech.layer("metal5")
    tree = RoutingTree("driver", driver_width=150.0, name="deep")
    previous = "driver"
    for index in range(10):
        node = f"n{index + 1}"
        tree.add_edge(
            previous,
            node,
            length=from_microns(1200.0),
            resistance_per_meter=layer.resistance_per_meter,
            capacitance_per_meter=layer.capacitance_per_meter,
        )
        previous = node
    tree.mark_sink(previous, 40.0)
    library = RepeaterLibrary.uniform(60.0, 300.0, 60.0)
    _assert_cores_identical(tech, tree, library, _targets_for(tech, tree, library))


def test_wide_fanin_merge(tech):
    """A 6-way Steiner point: the branch-merge kernel's widest join here."""
    layer = tech.layer("metal4")
    tree = RoutingTree("driver", driver_width=120.0, name="fanin6")
    tree.add_edge(
        "driver",
        "hub",
        length=from_microns(2000.0),
        resistance_per_meter=layer.resistance_per_meter,
        capacitance_per_meter=layer.capacitance_per_meter,
    )
    for index in range(6):
        sink = f"s{index}"
        tree.add_edge(
            "hub",
            sink,
            length=from_microns(1000.0 + 700.0 * index),
            resistance_per_meter=layer.resistance_per_meter,
            capacitance_per_meter=layer.capacitance_per_meter,
        )
        tree.mark_sink(sink, 40.0 + 20.0 * (index % 3))
    library = RepeaterLibrary.uniform(40.0, 200.0, 80.0)
    _assert_cores_identical(tech, tree, library, _targets_for(tech, tree, library))


def test_hard_state_cap_bit_identical(tech):
    """``max_states_per_node=10`` forces the (width, delay) hard cap at every
    node — the cores must agree on exactly which states survive."""
    generator = RandomTreeGenerator(tech, TreeGenerationConfig(num_sinks=4), seed=5)
    tree = generator.generate()
    library = RepeaterLibrary.uniform(40.0, 240.0, 40.0)
    targets = _targets_for(tech, tree, library, max_states=10)
    _assert_cores_identical(tech, tree, library, targets, max_states=10)


def test_run_many_matches_single_target_runs(tech):
    """One solve + per-target selection == one solve per target."""
    tree = RandomTreeGenerator(tech, TreeGenerationConfig(num_sinks=4), seed=9).generate()
    library = RepeaterLibrary.uniform(40.0, 240.0, 40.0)
    targets = _targets_for(tech, tree, library)
    dp = TreePowerDp(tech, site_pitch=PITCH)
    many = dp.run_many(tree, library, targets)
    singles = [dp.run(tree, library, target) for target in targets]
    assert [_signature(s) for s in many] == [_signature(s) for s in singles]


def test_batched_driver_many_problems(tech):
    """A mixed batch (different trees, libraries, state caps) in lockstep
    equals the per-problem fused core."""
    problems = []
    expected = []
    for seed in range(6):
        tree = RandomTreeGenerator(
            tech, TreeGenerationConfig(num_sinks=2 + seed % 3), seed=seed + 30
        ).generate()
        library = RepeaterLibrary.uniform_count(40.0, 300.0, 3 + seed % 3)
        max_states = 10 if seed % 2 else 4000
        targets = _targets_for(tech, tree, library, max_states=max_states)[1:]
        compiled = CompiledTree(tree, PITCH)
        problems.append(
            TreeDpProblem(
                tree,
                library,
                targets,
                compiled=compiled,
                site_pitch=PITCH,
                max_states_per_node=max_states,
            )
        )
        dp = TreePowerDp(
            tech, site_pitch=PITCH, max_states_per_node=max_states, core="fused"
        )
        solutions = dp.run_many(tree, library, targets, compiled=compiled)
        expected.append(
            (
                [_signature(s) for s in solutions],
                _stats_signature(solutions[0].statistics),
            )
        )
    batches = BatchedDpDriver(tech).run_tree_power(problems)
    actual = [
        ([_signature(s) for s in solutions], _stats_signature(solutions[0].statistics))
        for solutions in batches
    ]
    assert actual == expected


# --------------------------------------------------------------------------- #
# H-tree workload generator
# --------------------------------------------------------------------------- #
def test_htree_generator_properties(tech):
    levels, span = 3, from_microns(4000.0)
    tree = htree(tech, levels, span)
    tree.validate()
    assert tree.num_sinks == 2**levels
    # Every level halves the branch length and doubles the branch count, so
    # each level contributes exactly `span` of wire.
    assert tree.total_wire_length() == pytest.approx(levels * span)
    # Zero skew by construction: every sink is equidistant from the driver.
    depth = {tree.root: 0.0}
    for edge in tree.edges:
        depth[edge.child] = depth[edge.parent] + edge.length
    distances = {depth[sink.node] for sink in tree.sinks}
    assert len(distances) == 1
    # Deterministic: same arguments, same fingerprint.
    assert tree_fingerprint(htree(tech, levels, span)) == tree_fingerprint(tree)


def test_htree_bit_identical_across_cores(tech):
    tree = htree(tech, 2, from_microns(3000.0))
    library = RepeaterLibrary.uniform(40.0, 240.0, 40.0)
    _assert_cores_identical(tech, tree, library, _targets_for(tech, tree, library))


# --------------------------------------------------------------------------- #
# Serialisation + cache tier
# --------------------------------------------------------------------------- #
def test_tree_io_round_trip(tech):
    tree = RandomTreeGenerator(tech, TreeGenerationConfig(num_sinks=5), seed=4).generate()
    rebuilt = tree_from_dict(tree_to_dict(tree))
    assert tree_to_dict(rebuilt) == tree_to_dict(tree)
    assert tree_fingerprint(rebuilt) == tree_fingerprint(tree)


def test_tree_fingerprint_is_edge_order_sensitive(tech):
    """Sibling insertion order steers merge order (and float low bits), so
    order-distinct trees must not share a fingerprint."""
    layer = tech.layer("metal4")

    def build(order):
        tree = RoutingTree("driver", driver_width=120.0, name="order")
        tree.add_edge("driver", "hub", length=from_microns(1000.0),
                      resistance_per_meter=layer.resistance_per_meter,
                      capacitance_per_meter=layer.capacitance_per_meter)
        for child in order:
            tree.add_edge("hub", child, length=from_microns(1500.0),
                          resistance_per_meter=layer.resistance_per_meter,
                          capacitance_per_meter=layer.capacitance_per_meter)
            tree.mark_sink(child, 60.0)
        return tree

    assert tree_fingerprint(build(("a", "b"))) != tree_fingerprint(build(("b", "a")))


def test_window_cache_tree_tier(tech, tmp_path):
    tree = htree(tech, 2, from_microns(2000.0))
    library = RepeaterLibrary.uniform(40.0, 240.0, 40.0)
    targets = tuple(_targets_for(tech, tree, library)[2:])
    dp = TreePowerDp(tech, site_pitch=PITCH)
    context = "tree-tier-test"
    calls = []

    def factory():
        calls.append(1)
        return dp.run_many(tree, library, targets)

    cache = WindowCompilationCache(cache_dir=str(tmp_path))
    first = cache.tree_solutions(tree, context, targets, factory)
    second = cache.tree_solutions(tree, context, targets, factory)
    assert len(calls) == 1  # memory hit on the second call
    assert [_signature(s) for s in second] == [_signature(s) for s in first]

    # A fresh cache on the same directory must answer from disk.
    restarted = WindowCompilationCache(cache_dir=str(tmp_path))
    third = restarted.tree_solutions(tree, context, targets, factory)
    assert len(calls) == 1
    assert restarted.statistics.disk_hits == 1
    assert [_signature(s) for s in third] == [_signature(s) for s in first]
    # The disk payload preserves statistics too.
    assert _stats_signature(third[0].statistics) == _stats_signature(
        first[0].statistics
    )


# --------------------------------------------------------------------------- #
# DesignEngine population path
# --------------------------------------------------------------------------- #
def _record_signature(result):
    return [
        (r.method, round(r.target, 18), r.feasible, r.total_width, r.delay, r.num_repeaters)
        for r in result.records
    ]


def test_design_engine_htree_population_cores_identical(tech):
    cases = build_htree_cases(tech, count=2, levels=2)
    library = RepeaterLibrary.uniform(40.0, 240.0, 40.0)
    methods = [
        MethodSpec.tree_method("tree-ref", library, core="reference"),
        MethodSpec.tree_method("tree-fused", library, core="fused"),
        MethodSpec.tree_method("tree-batched", library, core="batched"),
    ]
    engine = DesignEngine(tech, window_cache=False)
    try:
        outcome = engine.design_population(cases, methods)
    finally:
        engine.close()
    assert [net.population_class for net in outcome.nets] == ["tree", "tree"]
    for net in outcome.nets:
        assert not net.failed
        by_method = {}
        for record in net.records:
            by_method.setdefault(record.method, []).append(
                (round(record.target, 18), record.feasible, record.total_width,
                 record.delay, record.num_repeaters)
            )
        assert by_method["tree-fused"] == by_method["tree-ref"]
        assert by_method["tree-batched"] == by_method["tree-ref"]


def test_design_engine_htree_parallel_matches_serial(tech):
    """Workers receive trees through the shared-memory arena (topology +
    compiled edge intervals, zero copy) and must reproduce the serial run."""
    cases = build_htree_cases(tech, count=2, levels=2)
    library = RepeaterLibrary.uniform(40.0, 240.0, 40.0)
    methods = [MethodSpec.tree_method("tree-fused", library, core="fused")]

    def run(workers):
        engine = DesignEngine(tech, workers=workers, window_cache=False)
        try:
            return engine.design_population(cases, methods)
        finally:
            engine.close()

    serial, parallel = run(0), run(2)
    assert [_record_signature(net) for net in serial.nets] == [
        _record_signature(net) for net in parallel.nets
    ]
    assert [net.states_generated for net in serial.nets] == [
        net.states_generated for net in parallel.nets
    ]
