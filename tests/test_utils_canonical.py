"""Tests for the strict canonical JSON serializer behind all cache keys."""

from __future__ import annotations

import numpy as np
import pytest

from repro.utils.canonical import CanonicalizationError, canonical_json, stable_digest


def test_canonical_json_sorts_keys_and_fixes_separators():
    assert canonical_json({"b": 1, "a": 2}) == '{"a":2,"b":1}'
    assert canonical_json([1, "x", None, True]) == '[1,"x",null,true]'


def test_canonical_json_tuples_and_lists_agree():
    assert canonical_json((1, 2, 3)) == canonical_json([1, 2, 3])


def test_canonical_json_floats_are_exact_and_type_distinct():
    # Shortest-round-trip repr: exact for every finite float.
    assert canonical_json(0.1) == "0.1"
    assert canonical_json(2.0) != canonical_json(2)  # float vs int differ
    value = 200.0e-6
    assert float(canonical_json(value)) == value


def test_canonical_json_collapses_numpy_scalars():
    assert canonical_json(np.float64(0.5)) == canonical_json(0.5)


def test_canonical_json_rejects_bare_objects():
    class Opaque:
        pass

    # The whole point of the strict serializer: a bare object must raise
    # (its default repr embeds a memory address -> unstable keys), and the
    # error names where in the payload it sits.
    with pytest.raises(CanonicalizationError, match=r"\$\.config\[1\]"):
        canonical_json({"config": [1, Opaque()]})


def test_canonical_json_rejects_non_finite_floats_and_non_string_keys():
    with pytest.raises(CanonicalizationError):
        canonical_json(float("nan"))
    with pytest.raises(CanonicalizationError):
        canonical_json(float("inf"))
    with pytest.raises(CanonicalizationError):
        canonical_json({1: "x"})


def test_stable_digest_is_deterministic_and_length_bounded():
    payload = {"seed": 2005, "pitch": 200.0e-6, "layers": ["metal4", "metal5"]}
    assert stable_digest(payload) == stable_digest(dict(reversed(payload.items())))
    assert len(stable_digest(payload)) == 20
    assert stable_digest(payload, length=8) == stable_digest(payload)[:8]
    assert stable_digest(payload) != stable_digest({**payload, "seed": 2006})
