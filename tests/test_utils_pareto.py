"""Tests for the Pareto pruning helpers."""

from repro.utils.pareto import prune_pareto_2d, prune_pareto_3d


def test_2d_empty_input():
    assert prune_pareto_2d([]) == []


def test_2d_single_point_survives():
    points = [(1.0, 2.0, "a")]
    assert prune_pareto_2d(points) == points


def test_2d_dominated_point_removed():
    points = [(1.0, 1.0, "good"), (2.0, 2.0, "bad")]
    front = prune_pareto_2d(points)
    assert [p[2] for p in front] == ["good"]


def test_2d_incomparable_points_kept_and_sorted():
    points = [(2.0, 1.0, "b"), (1.0, 2.0, "a")]
    front = prune_pareto_2d(points)
    assert [p[2] for p in front] == ["a", "b"]


def test_2d_duplicate_points_collapse():
    points = [(1.0, 1.0, "a"), (1.0, 1.0, "b")]
    assert len(prune_pareto_2d(points)) == 1


def test_2d_tolerance_drops_near_duplicates():
    points = [(1.0, 1.0, "a"), (2.0, 1.0 - 1e-6, "b")]
    assert len(prune_pareto_2d(points, tolerance=1e-3)) == 1
    assert len(prune_pareto_2d(points, tolerance=0.0)) == 2


def test_3d_empty_input():
    assert prune_pareto_3d([]) == []


def test_3d_dominated_removed():
    points = [(1.0, 1.0, 1.0, "good"), (1.0, 2.0, 2.0, "bad")]
    front = prune_pareto_3d(points)
    assert [p[3] for p in front] == ["good"]


def test_3d_incomparable_kept():
    points = [(1.0, 3.0, 2.0, "a"), (2.0, 1.0, 3.0, "b"), (3.0, 2.0, 1.0, "c")]
    assert len(prune_pareto_3d(points)) == 3


def test_3d_payload_carried_through():
    payload = {"solution": 42}
    front = prune_pareto_3d([(1.0, 1.0, 1.0, payload)])
    assert front[0][3] is payload


def test_3d_chain_of_domination():
    points = [(float(i), float(i), float(i), i) for i in range(10)]
    front = prune_pareto_3d(points)
    assert len(front) == 1
    assert front[0][3] == 0
