"""Tests for the deterministic RNG helpers."""

import numpy as np

from repro.utils.rng import child_rng, make_rng


def test_make_rng_from_int_is_deterministic():
    a = make_rng(7).integers(0, 1000, size=5)
    b = make_rng(7).integers(0, 1000, size=5)
    assert list(a) == list(b)


def test_make_rng_passthrough_generator():
    generator = np.random.default_rng(3)
    assert make_rng(generator) is generator


def test_make_rng_none_gives_generator():
    assert isinstance(make_rng(None), np.random.Generator)


def test_child_rng_deterministic():
    a = child_rng(2005, 3).integers(0, 10**6, size=4)
    b = child_rng(2005, 3).integers(0, 10**6, size=4)
    assert list(a) == list(b)


def test_child_rng_differs_by_index():
    a = child_rng(2005, 1).integers(0, 10**6, size=8)
    b = child_rng(2005, 2).integers(0, 10**6, size=8)
    assert list(a) != list(b)


def test_child_rng_differs_by_base_seed():
    a = child_rng(1, 0).integers(0, 10**6, size=8)
    b = child_rng(2, 0).integers(0, 10**6, size=8)
    assert list(a) != list(b)
