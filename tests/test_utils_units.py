"""Tests for unit conversion helpers."""

import pytest

from repro.utils import units


def test_micron_round_trip():
    assert units.to_microns(units.from_microns(1234.5)) == pytest.approx(1234.5)


def test_from_microns_value():
    assert units.from_microns(1000.0) == pytest.approx(1.0e-3)


def test_femtofarad_round_trip():
    assert units.to_femtofarads(units.from_femtofarads(3.7)) == pytest.approx(3.7)


def test_from_femtofarads_value():
    assert units.from_femtofarads(1.0) == pytest.approx(1.0e-15)


def test_picosecond_round_trip():
    assert units.to_picoseconds(units.from_picoseconds(250.0)) == pytest.approx(250.0)


def test_nanosecond_round_trip():
    assert units.to_nanoseconds(units.from_nanoseconds(1.5)) == pytest.approx(1.5)


def test_nanoseconds_are_thousand_picoseconds():
    assert units.from_nanoseconds(1.0) == pytest.approx(1000.0 * units.from_picoseconds(1.0))


def test_kiloohm_round_trip():
    assert units.to_kiloohms(units.from_kiloohms(6.0)) == pytest.approx(6.0)


def test_kiloohm_value():
    assert units.from_kiloohms(2.5) == pytest.approx(2500.0)
