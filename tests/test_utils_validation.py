"""Tests for the argument-validation helpers."""

import math

import pytest

from repro.utils.validation import (
    ValidationError,
    require,
    require_finite,
    require_in_range,
    require_non_empty,
    require_non_negative,
    require_positive,
    require_sorted,
)


def test_require_passes_on_true():
    require(True, "should not raise")


def test_require_raises_with_message():
    with pytest.raises(ValidationError, match="broken"):
        require(False, "broken")


def test_require_finite_rejects_nan():
    with pytest.raises(ValidationError):
        require_finite(math.nan, "x")


def test_require_finite_rejects_infinity():
    with pytest.raises(ValidationError):
        require_finite(math.inf, "x")


def test_require_positive_accepts_positive():
    require_positive(0.1, "x")


def test_require_positive_rejects_zero():
    with pytest.raises(ValidationError, match="x"):
        require_positive(0.0, "x")


def test_require_non_negative_accepts_zero():
    require_non_negative(0.0, "x")


def test_require_non_negative_rejects_negative():
    with pytest.raises(ValidationError):
        require_non_negative(-1e-9, "x")


def test_require_in_range_bounds_inclusive():
    require_in_range(0.0, 0.0, 1.0, "x")
    require_in_range(1.0, 0.0, 1.0, "x")


def test_require_in_range_rejects_outside():
    with pytest.raises(ValidationError):
        require_in_range(1.5, 0.0, 1.0, "x")


def test_require_sorted_accepts_ties_by_default():
    require_sorted([1.0, 1.0, 2.0], "x")


def test_require_sorted_strict_rejects_ties():
    with pytest.raises(ValidationError):
        require_sorted([1.0, 1.0], "x", strict=True)


def test_require_sorted_rejects_descending():
    with pytest.raises(ValidationError):
        require_sorted([2.0, 1.0], "x")


def test_require_non_empty():
    require_non_empty([1], "x")
    with pytest.raises(ValidationError):
        require_non_empty([], "x")
