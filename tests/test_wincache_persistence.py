"""Persistent frontier tier of the window cache + the shared engine cache.

Covers the ISSUE 3 satellite contracts:

* frontier disk entries round-trip **bit-for-bit**, including through a
  fresh interpreter;
* corrupted / stale-version / mis-keyed frontier files are evicted and
  rebuilt, never trusted and never fatal;
* `DesignEngine` shares one window cache per engine (serial) or per worker
  process (parallel) instead of one per net task, with per-task counter
  deltas merged onto `EngineStatistics`;
* the `rip sweep` CLI surfaces the cache and protocol-store counters.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.core.rip import Rip
from repro.dp.powerdp import PowerAwareDp
from repro.engine.cache import ProtocolConfig, ProtocolStore
from repro.engine.design import (
    DesignEngine,
    MethodSpec,
    WindowCacheSpec,
    _attach_window_cache,
)
from repro.engine.wincache import (
    FRONTIER_FORMAT_VERSION,
    WindowCompilationCache,
    dp_context_fingerprint,
    dp_result_from_payload,
    dp_result_to_payload,
)
from repro.tech.library import RepeaterLibrary
from repro.tech.nodes import NODE_180NM

TINY = ProtocolConfig(num_nets=2, targets_per_net=4, seed=13)


@pytest.fixture(scope="module")
def tiny_cases():
    return ProtocolStore().cases(TINY)


def _run_frontier(net, cache):
    dp = PowerAwareDp(NODE_180NM)
    library = RepeaterLibrary.uniform_count(10.0, 40.0, 8)
    candidates = (1e-3, 2e-3, 3e-3, 4e-3)
    context = dp_context_fingerprint(NODE_180NM, dp._pruning)
    return cache.final_dp_result(
        net,
        context,
        library.widths,
        candidates,
        lambda: dp.run(net, library, candidates),
    )


def _frontier_key(result):
    return [
        (p.delay, p.total_width, p.solution.positions, p.solution.widths)
        for p in result.frontier.points
    ]


# --------------------------------------------------------------------------- #
# disk round-trip
# --------------------------------------------------------------------------- #
def test_frontier_disk_roundtrip_bit_for_bit(mixed_net, tmp_path):
    computed = _run_frontier(mixed_net, WindowCompilationCache(cache_dir=tmp_path))
    assert list(tmp_path.glob("frontier-*.json"))

    fresh = WindowCompilationCache(cache_dir=tmp_path)
    loaded = _run_frontier(mixed_net, fresh)
    stats = fresh.statistics
    assert stats.disk_hits == 1 and stats.frontier_misses == 1
    assert _frontier_key(loaded) == _frontier_key(computed)
    assert loaded.statistics == computed.statistics
    # Second lookup on the same instance is an in-memory hit.
    again = _run_frontier(mixed_net, fresh)
    assert again is loaded
    assert fresh.statistics.frontier_hits == 1


def test_dp_result_payload_roundtrip_is_exact(mixed_net):
    result = _run_frontier(mixed_net, WindowCompilationCache())
    clone = dp_result_from_payload(json.loads(json.dumps(dp_result_to_payload(result))))
    assert _frontier_key(clone) == _frontier_key(result)
    assert clone.statistics == result.statistics
    # Frontier query behaviour is preserved exactly.
    for point in result.frontier.points:
        best = clone.best_for_delay(point.delay)
        assert best is not None and best.total_width == point.total_width


def test_frontier_roundtrip_through_fresh_interpreter(tmp_path):
    """A frontier written by one interpreter is reproduced bit-for-bit by
    another (process-stable keys + exact JSON float round-trip)."""
    src_dir = str(Path(__file__).resolve().parent.parent / "src")
    tests_dir = str(Path(__file__).resolve().parent.parent)
    code = f"""
import json, sys
sys.path.insert(0, {tests_dir!r})
from repro.engine.wincache import WindowCompilationCache
from repro.dp.powerdp import PowerAwareDp
from repro.engine.wincache import dp_context_fingerprint
from repro.tech.library import RepeaterLibrary
from repro.tech.nodes import NODE_180NM
from tests.conftest import build_mixed_net

net = build_mixed_net(NODE_180NM)
cache = WindowCompilationCache(cache_dir={str(tmp_path)!r})
dp = PowerAwareDp(NODE_180NM)
library = RepeaterLibrary.uniform_count(10.0, 40.0, 8)
candidates = (1e-3, 2e-3, 3e-3, 4e-3)
context = dp_context_fingerprint(NODE_180NM, dp._pruning)
result = cache.final_dp_result(net, context, library.widths, candidates,
                               lambda: dp.run(net, library, candidates))
print(json.dumps({{
    "points": [[p.delay, p.total_width, list(p.solution.positions),
                list(p.solution.widths)] for p in result.frontier.points],
    "disk_hits": cache.statistics.disk_hits,
}}))
"""
    env = dict(os.environ)
    env["PYTHONPATH"] = src_dir
    outputs = []
    for _ in range(2):
        proc = subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True,
            text=True,
            env=env,
            check=True,
        )
        outputs.append(json.loads(proc.stdout))
    assert outputs[0]["disk_hits"] == 0  # first interpreter computed
    assert outputs[1]["disk_hits"] == 1  # second one read the disk tier
    assert outputs[0]["points"] == outputs[1]["points"]  # bit-for-bit


# --------------------------------------------------------------------------- #
# eviction discipline
# --------------------------------------------------------------------------- #
def _frontier_file(tmp_path):
    [path] = list(tmp_path.glob("frontier-*.json"))
    return path


def test_corrupted_frontier_file_is_evicted_and_rebuilt(mixed_net, tmp_path):
    computed = _run_frontier(mixed_net, WindowCompilationCache(cache_dir=tmp_path))
    path = _frontier_file(tmp_path)
    path.write_text("{definitely not json", encoding="utf-8")

    fresh = WindowCompilationCache(cache_dir=tmp_path)
    rebuilt = _run_frontier(mixed_net, fresh)
    stats = fresh.statistics
    assert stats.disk_evictions == 1 and stats.disk_hits == 0
    assert _frontier_key(rebuilt) == _frontier_key(computed)
    # The rebuilt entry was re-persisted and is valid again.
    assert json.loads(path.read_text(encoding="utf-8"))["format_version"] == (
        FRONTIER_FORMAT_VERSION
    )


def test_stale_version_and_mismatched_key_frontiers_are_evicted(mixed_net, tmp_path):
    _run_frontier(mixed_net, WindowCompilationCache(cache_dir=tmp_path))
    path = _frontier_file(tmp_path)
    good = json.loads(path.read_text(encoding="utf-8"))

    stale = dict(good, format_version=FRONTIER_FORMAT_VERSION - 1)
    path.write_text(json.dumps(stale), encoding="utf-8")
    fresh = WindowCompilationCache(cache_dir=tmp_path)
    _run_frontier(mixed_net, fresh)
    assert fresh.statistics.disk_evictions == 1

    # Content that does not belong to its file name (foreign embedded key).
    foreign = dict(good, key="0" * len(good["key"]))
    path.write_text(json.dumps(foreign), encoding="utf-8")
    fresh2 = WindowCompilationCache(cache_dir=tmp_path)
    _run_frontier(mixed_net, fresh2)
    assert fresh2.statistics.disk_evictions == 1

    # Structurally broken result payload.
    broken = dict(good)
    broken["result"] = {"points": "nope"}
    path.write_text(json.dumps(broken), encoding="utf-8")
    fresh3 = WindowCompilationCache(cache_dir=tmp_path)
    rebuilt = _run_frontier(mixed_net, fresh3)
    assert fresh3.statistics.disk_evictions == 1
    assert not rebuilt.frontier.is_empty()


def test_non_dp_results_are_not_persisted(mixed_net, tmp_path):
    cache = WindowCompilationCache(cache_dir=tmp_path)
    value = cache.final_dp_result(mixed_net, "ctx", (10.0,), (1e-3,), lambda: "opaque")
    assert value == "opaque"
    assert not list(tmp_path.glob("frontier-*.json"))


# --------------------------------------------------------------------------- #
# one shared cache per engine / per worker process
# --------------------------------------------------------------------------- #
def _methods():
    return [
        MethodSpec.rip_method(),
        MethodSpec.dp_baseline("dp-g40", RepeaterLibrary.uniform_count(10.0, 40.0, 10)),
    ]


def _record_key(result):
    return [
        (r.net_name, r.method, r.target, r.feasible, r.total_width, r.delay)
        for r in result.records()
    ]


def test_engine_shares_one_cache_across_tasks_and_calls(tiny_cases, tech):
    engine = DesignEngine(tech, workers=0, store=ProtocolStore())
    first = engine.design_population(tiny_cases, _methods())
    assert engine.window_cache is not None
    stats_first = first.statistics.window_cache
    assert stats_first is not None and stats_first.frontier_misses > 0

    # A second sweep on the same engine reuses the very same cache: every
    # frontier comes from memory and the records are bit-identical.
    second = engine.design_population(tiny_cases, _methods())
    stats_second = second.statistics.window_cache
    assert stats_second.frontier_hits > 0
    assert _record_key(first) == _record_key(second)
    # Per-task deltas merge to the engine totals for this sweep.
    assert stats_second.frontier_hits == sum(
        net.cache_statistics.frontier_hits for net in second.nets
    )


def test_engine_disk_backed_cache_survives_engine_restart(tiny_cases, tech, tmp_path):
    def build():
        return DesignEngine(
            tech,
            workers=0,
            store=ProtocolStore(cache_dir=tmp_path),
        )

    cold_engine = build()
    assert cold_engine.window_cache_spec.cache_dir == str(tmp_path / "wincache")
    cold = cold_engine.design_population(tiny_cases, _methods())
    assert list((tmp_path / "wincache").glob("frontier-*.json"))

    warm_engine = build()
    warm = warm_engine.design_population(tiny_cases, _methods())
    assert _record_key(cold) == _record_key(warm)
    assert warm.statistics.window_cache.disk_hits > 0
    # The warm engine answered REFINE from the persisted records too.
    assert warm.statistics.wall_clock_seconds < cold.statistics.wall_clock_seconds


def test_parallel_workers_share_disk_tier_and_match_serial(tiny_cases, tech, tmp_path):
    kwargs = dict(store=ProtocolStore(cache_dir=tmp_path))
    serial = DesignEngine(tech, workers=0, **kwargs).design_population(
        tiny_cases, _methods()
    )
    parallel = DesignEngine(tech, workers=2, **kwargs).design_population(
        tiny_cases, _methods()
    )
    assert _record_key(serial) == _record_key(parallel)
    assert parallel.statistics.window_cache is not None
    assert parallel.statistics.window_cache.disk_hits > 0  # workers read the tier


def test_attach_window_cache_is_idempotent_per_process(tmp_path):
    spec = WindowCacheSpec(enabled=True, cache_dir=str(tmp_path), max_entries=64)
    first = _attach_window_cache(spec)
    second = _attach_window_cache(spec)
    assert second is first
    other = _attach_window_cache(WindowCacheSpec(enabled=True, cache_dir=None))
    assert other is not first
    assert _attach_window_cache(WindowCacheSpec(enabled=False)) is None


def test_engine_statistics_surface_store_counters(tech, tmp_path):
    engine = DesignEngine(tech, workers=0, store=ProtocolStore(cache_dir=tmp_path))
    result = engine.design_population(
        methods=[MethodSpec.rip_method()],
        technologies=[tech],
        protocol=TINY,
    )
    # The population was built inside the sweep: one build, no hits yet.
    assert result.statistics.store.builds == 1
    again = engine.design_population(
        methods=[MethodSpec.rip_method()],
        technologies=[tech],
        protocol=TINY,
    )
    assert again.statistics.store.builds == 0
    assert again.statistics.store.memory_hits == 1
    assert engine.store_statistics.builds == 1


# --------------------------------------------------------------------------- #
# CLI observability
# --------------------------------------------------------------------------- #
def test_cli_sweep_prints_cache_counters(tmp_path, capsys):
    from repro.cli.main import main

    argv = [
        "sweep",
        "--nets",
        "1",
        "--targets",
        "3",
        "--seed",
        "13",
        "--methods",
        "rip",
        "--cache-dir",
        str(tmp_path),
    ]
    assert main(argv) == 0
    cold_out = capsys.readouterr().out
    assert "window cache:" in cold_out
    assert "protocol store: 1 builds" in cold_out

    assert main(argv) == 0
    warm_out = capsys.readouterr().out
    assert "disk hits" in warm_out
    assert "protocol store: 0 builds" in warm_out


def test_rip_window_cache_disk_tier_serves_repeated_runs(tmp_path, tiny_cases, tech):
    """Rip + explicit disk-backed cache: the service restart scenario."""
    case = tiny_cases[0]

    def run():
        rip = Rip(tech, window_cache=WindowCompilationCache(cache_dir=tmp_path))
        prepared = rip.prepare(case.net)
        outcomes = [
            (
                t,
                r.feasible,
                r.total_width,
                r.delay,
                r.solution.positions,
                r.solution.widths,
                r.states_generated,
            )
            for t, r in ((t, rip.run_prepared(prepared, t)) for t in case.targets)
        ]
        return outcomes, rip.window_cache.statistics

    cold, cold_stats = run()
    warm, warm_stats = run()
    assert warm == cold
    assert cold_stats.disk_hits == 0
    assert warm_stats.disk_hits > 0


# --------------------------------------------------------------------------- #
# frontier disk budget (LRU, mtime recency)
# --------------------------------------------------------------------------- #
def _write_frontiers(cache, net, count):
    """Persist ``count`` distinct frontier entries for ``net``."""
    dp = PowerAwareDp(NODE_180NM)
    library = RepeaterLibrary.uniform_count(10.0, 40.0, 4)
    context = dp_context_fingerprint(NODE_180NM, dp._pruning)
    for k in range(count):
        candidates = (1e-3 + k * 1e-4, 2e-3 + k * 1e-4)
        cache.final_dp_result(
            net,
            context,
            library.widths,
            candidates,
            lambda candidates=candidates: dp.run(net, library, candidates),
        )


def test_frontier_disk_budget_lru(mixed_net, tmp_path):
    cache = WindowCompilationCache(cache_dir=tmp_path, max_files=3)
    _write_frontiers(cache, mixed_net, 6)
    files = sorted(tmp_path.glob("frontier-*.json"))
    assert len(files) == 3
    assert cache.statistics.disk_evictions >= 3
    # The budget keeps the most recently used files: re-running the last
    # three candidates is served from disk, not recomputed.
    fresh = WindowCompilationCache(cache_dir=tmp_path, max_files=3)
    dp = PowerAwareDp(NODE_180NM)
    library = RepeaterLibrary.uniform_count(10.0, 40.0, 4)
    context = dp_context_fingerprint(NODE_180NM, dp._pruning)
    for k in range(3, 6):
        candidates = (1e-3 + k * 1e-4, 2e-3 + k * 1e-4)
        fresh.final_dp_result(
            mixed_net,
            context,
            library.widths,
            candidates,
            lambda candidates=candidates: dp.run(mixed_net, library, candidates),
        )
    assert fresh.statistics.disk_hits == 3


def test_frontier_disk_budget_saved_file_survives(mixed_net, tmp_path):
    """Even with max_files=1 the file just saved survives its own save."""
    cache = WindowCompilationCache(cache_dir=tmp_path, max_files=1)
    _write_frontiers(cache, mixed_net, 4)
    files = list(tmp_path.glob("frontier-*.json"))
    assert len(files) == 1


def test_frontier_disk_budget_max_bytes(mixed_net, tmp_path):
    cache = WindowCompilationCache(cache_dir=tmp_path, max_bytes=1)
    _write_frontiers(cache, mixed_net, 3)
    # The size budget keeps only the most recent (just-saved) file.
    assert len(list(tmp_path.glob("frontier-*.json"))) == 1


def test_frontier_gc_on_demand(mixed_net, tmp_path):
    unbounded = WindowCompilationCache(cache_dir=tmp_path, max_files=None)
    _write_frontiers(unbounded, mixed_net, 5)
    assert len(list(tmp_path.glob("frontier-*.json"))) == 5
    collector = WindowCompilationCache(cache_dir=tmp_path, max_files=2)
    evicted = collector.gc()
    assert evicted == 3
    assert len(list(tmp_path.glob("frontier-*.json"))) == 2
    # A second GC is a no-op.
    assert collector.gc() == 0


def test_frontier_budget_disabled(mixed_net, tmp_path):
    cache = WindowCompilationCache(cache_dir=tmp_path, max_files=None)
    _write_frontiers(cache, mixed_net, 5)
    assert len(list(tmp_path.glob("frontier-*.json"))) == 5
    assert cache.gc() == 0
